"""The array BDD kernel: flat storage, iterative ops, kernel registry.

:class:`ArrayBDD` is a drop-in :class:`~repro.bdd.manager.BDD` whose
storage and hot operations are rebuilt for speed while every observable
contract is preserved:

* **Storage** — the three parallel node columns are ``array('q')``
  instead of Python lists (same attributes, same indexing, so sifting,
  dot export, satisfy counts and the explicit-state cross-checks are
  oblivious — and numpy can view them zero-copy for the bulk
  operations); the unique table is an open-addressed
  :class:`~repro.bdd.nodestore.UniqueTable` instead of a tuple-keyed
  dict; the five edge-keyed memo dicts become flat lossy
  :class:`~repro.bdd.nodestore.OpCache` tables.

* **Operations** — ITE, existential quantification, and-exists,
  restrict and constrain run without Python recursion (no 200k
  recursion-limit headroom, no frame objects or key tuples per node).
  Each op is a *descend/unwind* loop: resolve the current call; if it
  expands, push the pending else-branch as one tagged tuple frame and
  iterate straight into the then-branch; when a call resolves, unwind
  frames — an else-pending frame redirects the loop into its else
  child, a combine frame runs the inlined ``mk`` (unique-table probe
  over local variables) and the computed-cache store.  Children that
  hit a terminal case or the cache never touch the stack at all.

* **Bulk structure sweeps** — reachability-shaped queries
  (:meth:`_count_nodes` behind ``Function.size``/``shared_size``,
  :meth:`_support_levels`, and the garbage collector's mark phase) are
  frontier sweeps over zero-copy numpy views of the node columns
  instead of per-node Python set DFS; this is exactly the access
  pattern the flat layout exists for, and where it wins biggest.

* **Equivalence** — the kernel is *edge-identical* to the dict manager:
  given the same operation sequence, both allocate the same nodes in
  the same order and return bit-for-bit equal edges.  The argument:
  terminal rewrites and canonicalization are copied verbatim; recursion
  order is preserved because the then-branch is always entered first
  (the dict kernel's left-to-right evaluation); and a *lossy* computed
  cache can only cause recomputation, which re-derives the same edge
  through the exact unique table without allocating (every node a
  recomputation needs was created the first time the subproblem ran).
  Statistics *counters* may differ (a lossy cache records more
  misses); structures never do.  ``tests/test_kernel_parity.py``
  enforces this differentially, which is why the dict manager stays on
  as the oracle.

The kernel registry at the bottom (:func:`resolve_kernel`,
:func:`set_default_kernel`, :func:`kernel_context`,
:func:`make_manager`) backs ``Options(kernel=...)`` and the CLI
``--kernel`` flag: ``BDD.__new__`` consults it so that *every* existing
``BDD()`` construction site — the fsm builder, reorder shadows,
transfer targets — transparently builds the selected kernel.
"""

from __future__ import annotations

import os
import threading
import time
from array import array
from contextlib import contextmanager
from typing import Iterable, Iterator, List, Optional, Sequence

from .levelized import (MAX_PACK_NODES, LevelizedApply, SwitchToLevelized,
                        default_apply)
from .manager import BDD, BudgetExceededError, TERMINAL_LEVEL
from .nodestore import MIX_A, MIX_B, MIX_C, NodeStore, OpCache, UniqueTable

try:  # optional: vectorized sweeps only, never required
    import numpy as _np
except ImportError:  # pragma: no cover - exercised where numpy is absent
    _np = None

__all__ = ["ArrayBDD", "KERNELS", "default_kernel", "set_default_kernel",
           "resolve_kernel", "kernel_context", "make_manager"]

#: Below this store size the plain Python DFS beats the numpy sweep's
#: fixed costs (array allocation, per-round dispatch).
_SWEEP_MIN_NODES = 2048


class ArrayBDD(BDD):
    """The flat-array kernel behind the :class:`BDD` facade.

    Construct via ``BDD(kernel="array")`` (or under
    :func:`kernel_context`); direct construction is equivalent.  See
    the module docstring for the storage layout and the equivalence
    argument; see ``docs/ALGORITHMS.md`` for the full design.
    """

    kernel = "array"

    def __init__(self, max_nodes: Optional[int] = None,
                 time_limit: Optional[float] = None,
                 kernel: Optional[str] = None) -> None:
        super().__init__(max_nodes=max_nodes, time_limit=time_limit)
        # Replace the list storage built by BDD.__init__ with the flat
        # node store; same attribute names, same indexing protocol.
        store = NodeStore(TERMINAL_LEVEL)
        self._store = store
        self._level = store.level
        self._high = store.high
        self._low = store.low
        self._unique = UniqueTable(store.level, store.high, store.low)
        # Flat lossy computed caches; width = key words + result word.
        self._ite_cache = OpCache(4)
        self._quant_cache = OpCache(3)
        self._andex_cache = OpCache(4)
        self._restrict_cache = OpCache(3)
        self._constrain_cache = OpCache(3)
        # Apply-path selection (see levelized.py).  The engine itself
        # is built lazily on first dispatch; without numpy every mode
        # degrades to the recursive path.
        self.apply_mode = default_apply()
        self._levelized: Optional[LevelizedApply] = None

    def _engine(self) -> LevelizedApply:
        engine = self._levelized
        if engine is None:
            engine = self._levelized = LevelizedApply(self)
        return engine

    def _opcache_evictions(self) -> int:
        return (self._ite_cache.evictions + self._quant_cache.evictions
                + self._andex_cache.evictions
                + self._restrict_cache.evictions
                + self._constrain_cache.evictions)

    # ------------------------------------------------------------------
    # Node construction
    # ------------------------------------------------------------------

    def _mk_raw(self, level: int, high: int, low: int) -> int:
        # Same contract as the dict version: find-or-create with budget
        # checks before any mutation.  Inlined probe over locals.
        unique = self._unique
        slots = unique.slots
        mask = unique.mask
        levels = self._level
        highs = self._high
        lows = self._low
        i = ((level * MIX_A) ^ (high * MIX_B) ^ (low * MIX_C)) & mask
        while True:
            s = slots[i]
            if s == 0:
                break
            n = s - 1
            if levels[n] == level and highs[n] == high and lows[n] == low:
                return n << 1
            i = (i + 1) & mask
        node = len(levels)
        if self.max_nodes is not None and node > self.max_nodes:
            raise BudgetExceededError("node", self.max_nodes)
        if self._deadline is not None:
            self._time_check_countdown -= 1
            if self._time_check_countdown <= 0:
                self._time_check_countdown = 4096
                if time.monotonic() > self._deadline:
                    raise BudgetExceededError("time", self._deadline)
        levels.append(level)
        highs.append(high)
        lows.append(low)
        slots[i] = node + 1
        unique.used += 1
        if unique.used > unique.limit:
            unique.grow()
        self._level_members[level].append(node)
        self._nodes_created += 1
        if node + 1 > self._peak_nodes:
            self._peak_nodes = node + 1
        return node << 1

    # ------------------------------------------------------------------
    # Bulk node construction (the levelized reduce path)
    # ------------------------------------------------------------------

    def _mk_level(self, level: int, r1, r0):
        """Vectorized ``_mk(level, r1, r0)`` over parallel edge arrays.

        Redundant rows (``r1 == r0``) pass through; survivors are
        complement-canonicalized, deduplicated with one sort-based
        unique pass, and created/found via :meth:`_mk_batch`.  Returns
        an int64 array of result edges.
        """
        out = r1.copy()
        need = r1 != r0
        if need.any():
            hi = r1[need]
            lo = r0[need]
            neg = hi & 1
            hi ^= neg
            lo ^= neg
            key = (hi << 32) | lo
            uniq, idx, inv = _np.unique(key, return_index=True,
                                        return_inverse=True)
            res = self._mk_batch(level, hi[idx], lo[idx])
            out[need] = res[inv.reshape(-1)] ^ neg
        return out

    def _mk_batch(self, level: int, hi, lo):
        """Find-or-create a batch of *distinct* canonical nodes.

        ``hi`` must be regular and ``hi != lo`` rowwise (the caller
        canonicalizes).  Slots are claimed during the probe pass —
        capacity is reserved up front so no rehash can invalidate them,
        and a probe hitting a claimed-but-not-yet-appended node id
        (``>= base_len``) cannot be a match because batch keys are
        distinct.  Budget checks run after probing but before any row
        is appended; on failure the claims are rolled back, leaving the
        table exactly as it was (the recursive path's
        consistency-under-abort contract).
        """
        count = hi.shape[0]
        unique = self._unique
        unique.reserve(count)
        slots = unique.slots
        mask = unique.mask
        levels = self._level
        highs = self._high
        lows = self._low
        base_len = len(levels)
        homes = (((level * MIX_A) ^ (hi * MIX_B) ^ (lo * MIX_C))
                 & mask).tolist()
        hi_l = hi.tolist()
        lo_l = lo.tolist()
        out = [0] * count
        fresh_hi = array("q")
        fresh_lo = array("q")
        claimed = []
        node = base_len
        for j in range(count):
            h = hi_l[j]
            l = lo_l[j]
            i = homes[j]
            while True:
                s = slots[i]
                if s == 0:
                    slots[i] = node + 1
                    claimed.append(i)
                    out[j] = node << 1
                    fresh_hi.append(h)
                    fresh_lo.append(l)
                    node += 1
                    break
                n = s - 1
                if n < base_len and levels[n] == level \
                        and highs[n] == h and lows[n] == l:
                    out[j] = n << 1
                    break
                i = (i + 1) & mask
        created = node - base_len
        if created:
            try:
                if self.max_nodes is not None \
                        and node - 1 > self.max_nodes:
                    raise BudgetExceededError("node", self.max_nodes)
                if self._deadline is not None:
                    self._time_check_countdown -= created
                    if self._time_check_countdown <= 0:
                        self._time_check_countdown = 4096
                        if time.monotonic() > self._deadline:
                            raise BudgetExceededError(
                                "time", self._deadline)
            except BudgetExceededError:
                for i in claimed:
                    slots[i] = 0
                raise
            self._store.extend(
                array("q", [level] * created).tobytes(),
                fresh_hi.tobytes(), fresh_lo.tobytes())
            unique.used += created
            self._level_members[level].extend(
                range(base_len, node))
            self._nodes_created += created
            if node > self._peak_nodes:
                self._peak_nodes = node
        return _np.array(out, dtype=_np.int64)

    # ------------------------------------------------------------------
    # Core operation: if-then-else
    # ------------------------------------------------------------------
    #
    # Frame tuples (tag first; si/sm carry the cache slot probed at
    # expansion time and the cache mask it was computed under, so the
    # store can reuse the probe unless the cache has grown since —
    # masks strictly increase, so equality is a sufficient check):
    #   (0, negate, top, si, sm, kf, kg, kh, f0, g0, h0)  else pending
    #   (1, negate, top, si, sm, kf, kg, kh, r1)     combine r1 w/ res
    #
    # Cache probes use the same multiplicative mix as the unique
    # table: the caches are direct-mapped and lossy, so hash *quality*
    # bounds the recomputation rate — a cheaper, weaker hash measurably
    # blows up ITE-heavy image computations (each collision evicts a
    # still-hot subproblem whose recomputation re-collides in turn).

    def _ite(self, f: int, g: int, h: int) -> int:
        # Fast path: the full terminal/rewrite/canonicalize + cache
        # probe sequence without touching the frame stack.  Verbatim
        # from the dict kernel.
        if f == 0:
            return g
        if f == 1:
            return h
        if g == h:
            return g
        if g == 0 and h == 1:
            return f
        if g == 1 and h == 0:
            return f ^ 1
        if g == f:
            g = 0
        elif g == (f ^ 1):
            g = 1
        if h == f:
            h = 1
        elif h == (f ^ 1):
            h = 0
        if g == h:
            return g
        if g == 0 and h == 1:
            return f
        if g == 1 and h == 0:
            return f ^ 1
        if f & 1:
            f, g, h = f ^ 1, h, g
        root_negate = g & 1
        if root_negate:
            g, h = g ^ 1, h ^ 1
        cache = self._ite_cache
        cdata = cache.data
        cmask = cache.mask
        i4 = (((f * MIX_A) ^ (g * MIX_B) ^ (h * MIX_C)) & cmask) << 2
        if cdata[i4] == f and cdata[i4 + 1] == g and cdata[i4 + 2] == h:
            self._ite_hits += 1
            return cdata[i4 + 3] ^ root_negate
        # Apply-path dispatch on the canonical miss (see levelized.py):
        # "levelized" sweeps immediately; "auto" arms a miss budget so
        # the recursive loop below bails out via SwitchToLevelized once
        # the live request count proves the operation large.
        budget = 0  # 0 = unlimited (plain recursive)
        if self.apply_mode != "recursive" and _np is not None \
                and len(self._level) < MAX_PACK_NODES:
            if self.apply_mode == "levelized":
                raw = self._engine().ite(f, g, h)
                self._ite_cache.store3(f, g, h, raw)
                return raw ^ root_negate
            budget = self.apply_threshold
        kf0, kg0, kh0 = f, g, h
        # Slow path: descend/unwind over tagged tuple frames.  The loop
        # re-resolves the now-canonical (f, g, h) — and recounts its
        # miss — so the root negate is re-applied at the very end.
        # Stacks are fresh per call, so a BudgetExceededError mid-way
        # leaves no loop state behind.
        unique = self._unique
        uslots = unique.slots
        umask = unique.mask
        levels = self._level
        highs = self._high
        lows = self._low
        mk_raw = self._mk_raw
        A = MIX_A
        B = MIX_B
        C = MIX_C
        tasks: list = []
        push = tasks.append
        pop = tasks.pop
        res = 0
        hits = 0
        misses = 0
        try:
            while True:
                # -- resolve the current (f, g, h) ----------------------
                if f == 0:
                    res = g
                elif f == 1:
                    res = h
                elif g == h:
                    res = g
                else:
                    if g == f:
                        g = 0
                    elif g == (f ^ 1):
                        g = 1
                    if h == f:
                        h = 1
                    elif h == (f ^ 1):
                        h = 0
                    if g == h:
                        res = g
                    elif g == 0 and h == 1:
                        res = f
                    elif g == 1 and h == 0:
                        res = f ^ 1
                    else:
                        if f & 1:
                            f, g, h = f ^ 1, h, g
                        negate = g & 1
                        if negate:
                            g, h = g ^ 1, h ^ 1
                        i4 = (((f * MIX_A) ^ (g * MIX_B) ^ (h * MIX_C)) & cmask) << 2
                        if cdata[i4] == f and cdata[i4 + 1] == g \
                                and cdata[i4 + 2] == h:
                            hits += 1
                            res = cdata[i4 + 3] ^ negate
                        else:
                            misses += 1
                            if misses == budget:
                                raise SwitchToLevelized
                            nf = f >> 1
                            ng = g >> 1
                            nh = h >> 1
                            lf = levels[nf]
                            lg = levels[ng]
                            lh = levels[nh]
                            top = lf if lf < lg else lg
                            if lh < top:
                                top = lh
                            # f and g are regular here; only h carries
                            # a possible complement bit.
                            if lf == top:
                                f1 = highs[nf]
                                f0 = lows[nf]
                            else:
                                f1 = f0 = f
                            if lg == top:
                                g1 = highs[ng]
                                g0 = lows[ng]
                            else:
                                g1 = g0 = g
                            if lh == top:
                                s = h & 1
                                h1 = highs[nh] ^ s
                                h0 = lows[nh] ^ s
                            else:
                                h1 = h0 = h
                            push((0, negate, top, i4, cmask,
                                  f, g, h, f0, g0, h0))
                            f, g, h = f1, g1, h1
                            continue  # descend into the then-branch
                # -- unwind: res holds the just-finished call's value ---
                while True:
                    if not tasks:
                        return res ^ root_negate
                    frame = pop()
                    if not frame[0]:
                        _t, negate, top, si, sm, kf, kg, kh, f, g, h \
                            = frame
                        push((1, negate, top, si, sm, kf, kg, kh, res))
                        break  # descend into the else-branch (f, g, h)
                    _t, negate, top, si, sm, kf, kg, kh, r1 = frame
                    r0 = res
                    # Inline _mk(top, r1, r0).
                    if r1 == r0:
                        raw = r1
                    else:
                        neg = r1 & 1
                        hi = r1 ^ neg
                        lo = r0 ^ neg
                        i = ((top * A) ^ (hi * B) ^ (lo * C)) & umask
                        while True:
                            s = uslots[i]
                            if s == 0:
                                raw = mk_raw(top, hi, lo) | neg
                                uslots = unique.slots
                                umask = unique.mask
                                break
                            n = s - 1
                            if levels[n] == top and highs[n] == hi \
                                    and lows[n] == lo:
                                raw = (n << 1) | neg
                                break
                            i = (i + 1) & umask
                    if sm != cmask:
                        si = (((kf * A) ^ (kg * B) ^ (kh * C))
                              & cmask) << 2
                    if cdata[si] == 0:
                        used = cache.used + 1
                        if used > cache.grow_at:
                            cache.grow()
                            cdata = cache.data
                            cmask = cache.mask
                            si = (((kf * A) ^ (kg * B) ^ (kh * C))
                                  & cmask) << 2
                            used = cache.used + (cdata[si] == 0)
                        cache.used = used
                    elif cdata[si] != kf or cdata[si + 1] != kg \
                            or cdata[si + 2] != kh:
                        cache.evictions += 1
                        cache.pressure += 1
                        if cache.used + cache.pressure > cache.grow_at:
                            cache.grow()
                            cdata = cache.data
                            cmask = cache.mask
                            si = (((kf * A) ^ (kg * B) ^ (kh * C))
                                  & cmask) << 2
                            cache.used += cdata[si] == 0
                    cdata[si] = kf
                    cdata[si + 1] = kg
                    cdata[si + 2] = kh
                    cdata[si + 3] = raw
                    res = raw ^ negate
        except SwitchToLevelized:
            pass
        finally:
            self._ite_hits += hits
            self._ite_misses += misses
        # Reached only via SwitchToLevelized: restart the operation on
        # the breadth-first engine from the saved canonical arguments.
        # The recursive prefix's nodes and cache entries all stand.
        raw = self._engine().ite(kf0, kg0, kh0)
        self._ite_cache.store3(kf0, kg0, kh0, raw)
        return raw ^ root_negate

    # ------------------------------------------------------------------
    # Quantification
    # ------------------------------------------------------------------
    #
    # Frame tuples (si/sm as in _ite):
    #   (0, q, top, si, sm, kf, f0)  else pending (q: top quantified)
    #   (1, q, top, si, sm, kf, r1)  combine r1 with res

    def _exists(self, f: int, levelset: frozenset, levels_key: int,
                max_level: int) -> int:
        levels = self._level
        if f <= 1 or levels[f >> 1] > max_level:
            return f
        cache = self._quant_cache
        cdata = cache.data
        cmask = cache.mask
        i3 = (((f * MIX_A) ^ (levels_key * MIX_B)) & cmask) * 3
        if cdata[i3] == f and cdata[i3 + 1] == levels_key:
            self._quant_hits += 1
            return cdata[i3 + 2]
        budget = 0  # 0 = unlimited (plain recursive)
        if self.apply_mode != "recursive" and _np is not None \
                and len(levels) < MAX_PACK_NODES:
            if self.apply_mode == "levelized":
                out = self._engine().exists(f, levelset, levels_key,
                                            max_level)
                cache.store2(f, levels_key, out)
                return out
            budget = self.apply_threshold
        kf0 = f
        highs = self._high
        lows = self._low
        ite = self._ite
        unique = self._unique
        mk_raw = self._mk_raw
        A = MIX_A
        B = MIX_B
        C = MIX_C
        tasks: list = []
        push = tasks.append
        pop = tasks.pop
        res = 0
        hits = 0
        misses = 0
        try:
            while True:
                # -- resolve the current f -----------------------------
                if f <= 1 or levels[f >> 1] > max_level:
                    res = f
                else:
                    i3 = (((f * MIX_A) ^ (levels_key * MIX_B)) & cmask) * 3
                    if cdata[i3] == f and cdata[i3 + 1] == levels_key:
                        hits += 1
                        res = cdata[i3 + 2]
                    else:
                        misses += 1
                        if misses == budget:
                            raise SwitchToLevelized
                        node = f >> 1
                        sign = f & 1
                        top = levels[node]
                        push((0, top in levelset, top, i3, cmask, f,
                              lows[node] ^ sign))
                        f = highs[node] ^ sign
                        continue
                # -- unwind --------------------------------------------
                while True:
                    if not tasks:
                        return res
                    frame = pop()
                    if not frame[0]:
                        _t, q, top, si, sm, kf, f0 = frame
                        if not (q and res == 0):
                            push((1, q, top, si, sm, kf, res))
                            f = f0
                            break
                        # exists x with a True then-branch: the whole
                        # quantification is True — skip the else child.
                        out = 0
                    else:
                        _t, q, top, si, sm, kf, r1 = frame
                        if q:
                            out = ite(r1, 0, res)  # _or(r1, r0)
                        elif r1 == res:
                            out = r1
                        else:
                            # Inline _mk(top, r1, res); nested ite()
                            # calls can grow the unique table, so fetch
                            # its slots fresh per combine.
                            neg = r1 & 1
                            hi = r1 ^ neg
                            lo = res ^ neg
                            uslots = unique.slots
                            umask = unique.mask
                            i = ((top * A) ^ (hi * B) ^ (lo * C)) \
                                & umask
                            while True:
                                s = uslots[i]
                                if s == 0:
                                    out = mk_raw(top, hi, lo) | neg
                                    break
                                n = s - 1
                                if levels[n] == top \
                                        and highs[n] == hi \
                                        and lows[n] == lo:
                                    out = (n << 1) | neg
                                    break
                                i = (i + 1) & umask
                    if sm != cmask:
                        si = (((kf * A) ^ (levels_key * B)) & cmask) * 3
                    if cdata[si] == 0:
                        used = cache.used + 1
                        if used > cache.grow_at:
                            cache.grow()
                            cdata = cache.data
                            cmask = cache.mask
                            si = (((kf * A) ^ (levels_key * B)) & cmask) * 3
                            used = cache.used + (cdata[si] == 0)
                        cache.used = used
                    elif cdata[si] != kf or cdata[si + 1] != levels_key:
                        cache.evictions += 1
                        cache.pressure += 1
                        if cache.used + cache.pressure > cache.grow_at:
                            cache.grow()
                            cdata = cache.data
                            cmask = cache.mask
                            si = (((kf * A) ^ (levels_key * B))
                                  & cmask) * 3
                            cache.used += cdata[si] == 0
                    cdata[si] = kf
                    cdata[si + 1] = levels_key
                    cdata[si + 2] = out
                    res = out
        except SwitchToLevelized:
            pass
        finally:
            self._quant_hits += hits
            self._quant_misses += misses
        # Auto-switch: restart on the levelized engine from the root.
        out = self._engine().exists(kf0, levelset, levels_key, max_level)
        self._quant_cache.store2(kf0, levels_key, out)
        return out

    # ------------------------------------------------------------------
    # Relational product
    # ------------------------------------------------------------------
    #
    # Frame tuples (si/sm as in _ite):
    #   (0, q, top, si, sm, kf, kg, f0, g0)  else branch pending
    #   (1, q, top, si, sm, kf, kg, r1)      combine r1 with res

    def _and_exists(self, f: int, g: int, levelset: frozenset,
                    levels_key: int, max_level: int) -> int:
        levels = self._level
        highs = self._high
        lows = self._low
        cache = self._andex_cache
        cdata = cache.data
        cmask = cache.mask
        ite = self._ite
        exists = self._exists
        # Root fast path — the loop's resolve step, hoisted so the
        # apply dispatch (like _ite's) sees the canonical cache miss.
        if f == 1 or g == 1:
            return 1
        if f == 0 or f == g:
            return exists(g, levelset, levels_key, max_level)
        if g == 0:
            return exists(f, levelset, levels_key, max_level)
        if f == (g ^ 1):
            return 1
        if f > g:
            f, g = g, f
        lf = levels[f >> 1]
        lg = levels[g >> 1]
        if (lf if lf < lg else lg) > max_level:
            return ite(f, g, 1)  # _and(f, g)
        i4 = (((f * MIX_A) ^ (g * MIX_B) ^ (levels_key * MIX_C))
              & cmask) << 2
        if cdata[i4] == f and cdata[i4 + 1] == g \
                and cdata[i4 + 2] == levels_key:
            self._andex_hits += 1
            return cdata[i4 + 3]
        budget = 0  # 0 = unlimited (plain recursive)
        if self.apply_mode != "recursive" and _np is not None \
                and len(levels) < MAX_PACK_NODES:
            if self.apply_mode == "levelized":
                out = self._engine().and_exists(f, g, levelset,
                                                levels_key, max_level)
                cache.store3(f, g, levels_key, out)
                return out
            budget = self.apply_threshold
        kf0, kg0 = f, g
        unique = self._unique
        mk_raw = self._mk_raw
        A = MIX_A
        B = MIX_B
        C = MIX_C
        tasks: list = []
        push = tasks.append
        pop = tasks.pop
        res = 0
        hits = 0
        misses = 0
        try:
            while True:
                # -- resolve the current (f, g) ------------------------
                # Special cases, verbatim from the dict kernel.
                if f == 1 or g == 1:
                    res = 1
                elif f == 0 or f == g:
                    res = exists(g, levelset, levels_key, max_level)
                elif g == 0:
                    res = exists(f, levelset, levels_key, max_level)
                elif f == (g ^ 1):
                    res = 1
                else:
                    if f > g:
                        f, g = g, f
                    lf = levels[f >> 1]
                    lg = levels[g >> 1]
                    top = lf if lf < lg else lg
                    if top > max_level:
                        res = ite(f, g, 1)  # _and(f, g)
                    else:
                        i4 = (((f * A) ^ (g * B) ^ (levels_key * C))
                              & cmask) << 2
                        if cdata[i4] == f and cdata[i4 + 1] == g \
                                and cdata[i4 + 2] == levels_key:
                            hits += 1
                            res = cdata[i4 + 3]
                        else:
                            misses += 1
                            if misses == budget:
                                raise SwitchToLevelized
                            if lf == top:
                                sign = f & 1
                                f1 = highs[f >> 1] ^ sign
                                f0 = lows[f >> 1] ^ sign
                            else:
                                f1 = f0 = f
                            if lg == top:
                                sign = g & 1
                                g1 = highs[g >> 1] ^ sign
                                g0 = lows[g >> 1] ^ sign
                            else:
                                g1 = g0 = g
                            push((0, top in levelset, top, i4, cmask,
                                  f, g, f0, g0))
                            f, g = f1, g1
                            continue
                # -- unwind --------------------------------------------
                while True:
                    if not tasks:
                        return res
                    frame = pop()
                    if not frame[0]:
                        _t, q, top, si, sm, kf, kg, f0, g0 = frame
                        if not (q and res == 0):
                            push((1, q, top, si, sm, kf, kg, res))
                            f, g = f0, g0
                            break
                        out = 0
                    else:
                        _t, q, top, si, sm, kf, kg, r1 = frame
                        if q:
                            out = ite(r1, 0, res)  # _or(r1, r0)
                        elif r1 == res:
                            out = r1
                        else:
                            # Inline _mk(top, r1, res); nested ite()/
                            # exists() calls can grow the unique table,
                            # so fetch its slots fresh per combine.
                            neg = r1 & 1
                            hi = r1 ^ neg
                            lo = res ^ neg
                            uslots = unique.slots
                            umask = unique.mask
                            i = ((top * A) ^ (hi * B) ^ (lo * C)) \
                                & umask
                            while True:
                                s = uslots[i]
                                if s == 0:
                                    out = mk_raw(top, hi, lo) | neg
                                    break
                                n = s - 1
                                if levels[n] == top \
                                        and highs[n] == hi \
                                        and lows[n] == lo:
                                    out = (n << 1) | neg
                                    break
                                i = (i + 1) & umask
                    if sm != cmask:
                        si = (((kf * A) ^ (kg * B) ^ (levels_key * C))
                              & cmask) << 2
                    if cdata[si] == 0:
                        used = cache.used + 1
                        if used > cache.grow_at:
                            cache.grow()
                            cdata = cache.data
                            cmask = cache.mask
                            si = (((kf * A) ^ (kg * B) ^ (levels_key * C))
                                  & cmask) << 2
                            used = cache.used + (cdata[si] == 0)
                        cache.used = used
                    elif cdata[si] != kf or cdata[si + 1] != kg \
                            or cdata[si + 2] != levels_key:
                        cache.evictions += 1
                        cache.pressure += 1
                        if cache.used + cache.pressure > cache.grow_at:
                            cache.grow()
                            cdata = cache.data
                            cmask = cache.mask
                            si = (((kf * A) ^ (kg * B) ^ (levels_key * C))
                                  & cmask) << 2
                            cache.used += cdata[si] == 0
                    cdata[si] = kf
                    cdata[si + 1] = kg
                    cdata[si + 2] = levels_key
                    cdata[si + 3] = out
                    res = out
        except SwitchToLevelized:
            pass
        finally:
            self._andex_hits += hits
            self._andex_misses += misses
        # Auto-switch: restart on the levelized engine from the root.
        out = self._engine().and_exists(kf0, kg0, levelset, levels_key,
                                        max_level)
        self._andex_cache.store3(kf0, kg0, levels_key, out)
        return out

    # ------------------------------------------------------------------
    # Generalized cofactors
    # ------------------------------------------------------------------
    #
    # Frame tuples (si/sm as in _ite):
    #   (0, top, si, sm, kf, kc, f0, c0)  else branch pending
    #   (1, top, si, sm, kf, kc, r1)      combine r1 with res
    #   (2, si, sm, kf, kc)           store res for a single-branch call

    def _restrict_rec(self, f: int, c: int) -> int:
        if c <= 1 or f <= 1:
            return f
        levels = self._level
        highs = self._high
        lows = self._low
        cache = self._restrict_cache
        cdata = cache.data
        cmask = cache.mask
        ite = self._ite
        unique = self._unique
        mk_raw = self._mk_raw
        A = MIX_A
        B = MIX_B
        C = MIX_C
        tasks: list = []
        push = tasks.append
        pop = tasks.pop
        res = 0
        hits = 0
        misses = 0
        try:
            while True:
                # -- resolve the current (f, c) ------------------------
                if c <= 1 or f <= 1:
                    res = f
                else:
                    i3 = (((f * A) ^ (c * B)) & cmask) * 3
                    if cdata[i3] == f and cdata[i3 + 1] == c:
                        hits += 1
                        res = cdata[i3 + 2]
                    else:
                        misses += 1
                        lf = levels[f >> 1]
                        lc = levels[c >> 1]
                        if lc < lf:
                            # Top variable of c is absent from f:
                            # existentially drop it from the care set.
                            sign = c & 1
                            c1 = highs[c >> 1] ^ sign
                            c0 = lows[c >> 1] ^ sign
                            push((2, i3, cmask, f, c))
                            c = ite(c1, 0, c0)  # _or(c1, c0)
                            continue
                        sign = f & 1
                        f1 = highs[f >> 1] ^ sign
                        f0 = lows[f >> 1] ^ sign
                        if lf < lc:
                            c1 = c0 = c
                        else:
                            sign = c & 1
                            c1 = highs[c >> 1] ^ sign
                            c0 = lows[c >> 1] ^ sign
                        if c1 == 1:  # c_x is False
                            push((2, i3, cmask, f, c))
                            f, c = f0, c0
                        elif c0 == 1:  # c_xbar is False
                            push((2, i3, cmask, f, c))
                            f, c = f1, c1
                        else:
                            push((0, lf, i3, cmask, f, c, f0, c0))
                            f, c = f1, c1
                        continue
                # -- unwind --------------------------------------------
                while True:
                    if not tasks:
                        return res
                    frame = pop()
                    tag = frame[0]
                    if tag == 0:
                        _t, top, si, sm, kf, kc, f0, c0 = frame
                        push((1, top, si, sm, kf, kc, res))
                        f, c = f0, c0
                        break
                    if tag == 1:
                        _t, top, si, sm, kf, kc, r1 = frame
                        if r1 == res:
                            out = r1
                        else:
                            # Inline _mk(top, r1, res); nested ite()
                            # calls can grow the unique table, so fetch
                            # its slots fresh per combine.
                            neg = r1 & 1
                            hi = r1 ^ neg
                            lo = res ^ neg
                            uslots = unique.slots
                            umask = unique.mask
                            i = ((top * A) ^ (hi * B) ^ (lo * C)) \
                                & umask
                            while True:
                                s = uslots[i]
                                if s == 0:
                                    out = mk_raw(top, hi, lo) | neg
                                    break
                                n = s - 1
                                if levels[n] == top \
                                        and highs[n] == hi \
                                        and lows[n] == lo:
                                    out = (n << 1) | neg
                                    break
                                i = (i + 1) & umask
                    else:
                        _t, si, sm, kf, kc = frame
                        out = res
                    if sm != cmask:
                        si = (((kf * A) ^ (kc * B)) & cmask) * 3
                    if cdata[si] == 0:
                        used = cache.used + 1
                        if used > cache.grow_at:
                            cache.grow()
                            cdata = cache.data
                            cmask = cache.mask
                            si = (((kf * A) ^ (kc * B)) & cmask) * 3
                            used = cache.used + (cdata[si] == 0)
                        cache.used = used
                    elif cdata[si] != kf or cdata[si + 1] != kc:
                        cache.evictions += 1
                        cache.pressure += 1
                        if cache.used + cache.pressure > cache.grow_at:
                            cache.grow()
                            cdata = cache.data
                            cmask = cache.mask
                            si = (((kf * A) ^ (kc * B)) & cmask) * 3
                            cache.used += cdata[si] == 0
                    cdata[si] = kf
                    cdata[si + 1] = kc
                    cdata[si + 2] = out
                    res = out
        finally:
            self._restrict_hits += hits
            self._restrict_misses += misses

    def _constrain_rec(self, f: int, c: int) -> int:
        if c <= 1 or f <= 1:
            return f
        levels = self._level
        highs = self._high
        lows = self._low
        cache = self._constrain_cache
        cdata = cache.data
        cmask = cache.mask
        unique = self._unique
        mk_raw = self._mk_raw
        A = MIX_A
        B = MIX_B
        C = MIX_C
        tasks: list = []
        push = tasks.append
        pop = tasks.pop
        res = 0
        hits = 0
        misses = 0
        try:
            while True:
                # -- resolve the current (f, c) ------------------------
                if c <= 1 or f <= 1:
                    res = f
                elif f == c:
                    res = 0  # On the care set, f is true everywhere.
                elif f == (c ^ 1):
                    res = 1  # On the care set, f is false everywhere.
                else:
                    i3 = (((f * A) ^ (c * B)) & cmask) * 3
                    if cdata[i3] == f and cdata[i3 + 1] == c:
                        hits += 1
                        res = cdata[i3 + 2]
                    else:
                        misses += 1
                        lf = levels[f >> 1]
                        lc = levels[c >> 1]
                        top = lf if lf < lc else lc
                        if lf == top:
                            sign = f & 1
                            f1 = highs[f >> 1] ^ sign
                            f0 = lows[f >> 1] ^ sign
                        else:
                            f1 = f0 = f
                        if lc == top:
                            sign = c & 1
                            c1 = highs[c >> 1] ^ sign
                            c0 = lows[c >> 1] ^ sign
                        else:
                            c1 = c0 = c
                        if c1 == 1:  # c_x is False
                            push((2, i3, cmask, f, c))
                            f, c = f0, c0
                        elif c0 == 1:  # c_xbar is False
                            push((2, i3, cmask, f, c))
                            f, c = f1, c1
                        else:
                            push((0, top, i3, cmask, f, c, f0, c0))
                            f, c = f1, c1
                        continue
                # -- unwind --------------------------------------------
                while True:
                    if not tasks:
                        return res
                    frame = pop()
                    tag = frame[0]
                    if tag == 0:
                        _t, top, si, sm, kf, kc, f0, c0 = frame
                        push((1, top, si, sm, kf, kc, res))
                        f, c = f0, c0
                        break
                    if tag == 1:
                        _t, top, si, sm, kf, kc, r1 = frame
                        if r1 == res:
                            out = r1
                        else:
                            # Inline _mk(top, r1, res).  Only mk_raw
                            # itself can grow the unique table here, so
                            # a fresh fetch per combine still applies.
                            neg = r1 & 1
                            hi = r1 ^ neg
                            lo = res ^ neg
                            uslots = unique.slots
                            umask = unique.mask
                            i = ((top * A) ^ (hi * B) ^ (lo * C)) \
                                & umask
                            while True:
                                s = uslots[i]
                                if s == 0:
                                    out = mk_raw(top, hi, lo) | neg
                                    break
                                n = s - 1
                                if levels[n] == top \
                                        and highs[n] == hi \
                                        and lows[n] == lo:
                                    out = (n << 1) | neg
                                    break
                                i = (i + 1) & umask
                    else:
                        _t, si, sm, kf, kc = frame
                        out = res
                    if sm != cmask:
                        si = (((kf * A) ^ (kc * B)) & cmask) * 3
                    if cdata[si] == 0:
                        used = cache.used + 1
                        if used > cache.grow_at:
                            cache.grow()
                            cdata = cache.data
                            cmask = cache.mask
                            si = (((kf * A) ^ (kc * B)) & cmask) * 3
                            used = cache.used + (cdata[si] == 0)
                        cache.used = used
                    elif cdata[si] != kf or cdata[si + 1] != kc:
                        cache.evictions += 1
                        cache.pressure += 1
                        if cache.used + cache.pressure > cache.grow_at:
                            cache.grow()
                            cdata = cache.data
                            cmask = cache.mask
                            si = (((kf * A) ^ (kc * B)) & cmask) * 3
                            cache.used += cdata[si] == 0
                    cdata[si] = kf
                    cdata[si + 1] = kc
                    cdata[si + 2] = out
                    res = out
        finally:
            self._constrain_hits += hits
            self._constrain_misses += misses

    # ------------------------------------------------------------------
    # Bulk structure sweeps (vectorized when numpy is present)
    # ------------------------------------------------------------------

    def _np_reachable(self, roots: Sequence[int]):
        """Boolean mark vector over node ids, via frontier sweeps.

        Each round gathers the children of the unmarked frontier
        through zero-copy views of the node columns; rounds are bounded
        by the DAG depth, so total work is a handful of vectorized
        passes instead of one Python iteration per node.
        """
        count = len(self._level)
        marked = _np.zeros(count, dtype=bool)
        if not roots:
            return marked
        highs = _np.frombuffer(self._high, dtype=_np.int64)
        lows = _np.frombuffer(self._low, dtype=_np.int64)
        frontier = _np.array(roots, dtype=_np.int64)
        marked[frontier] = True
        # Dedup by scattering into a scratch bitmap instead of
        # np.unique: O(store) boolean ops per round beat the sort by
        # 3-5x on real frontiers.
        scratch = _np.zeros(count, dtype=bool)
        while frontier.size:
            children = _np.concatenate(
                (highs[frontier], lows[frontier])) >> 1
            scratch[:] = False
            scratch[children] = True
            scratch &= ~marked
            marked |= scratch
            frontier = _np.flatnonzero(scratch)
        return marked

    def _mark_live(self, handles) -> bytearray:
        if _np is None or len(self._level) < _SWEEP_MIN_NODES:
            return super()._mark_live(handles)
        roots = [0] + [fn.edge >> 1 for fn in handles]
        return bytearray(
            self._np_reachable(roots).view(_np.uint8).tobytes())

    def _count_nodes(self, edges: Iterable[int]) -> int:
        root_edges = list(edges)
        if _np is None or len(self._level) < _SWEEP_MIN_NODES:
            return super()._count_nodes(root_edges)
        if not root_edges:
            return 0
        marked = self._np_reachable([e >> 1 for e in root_edges])
        inner = int(marked.sum()) - int(marked[0])
        # The dict oracle counts the terminal exactly once whenever any
        # non-terminal node is reachable.
        return inner + 1 if inner else 1

    def _support_levels(self, edge: int) -> frozenset:
        if _np is None or len(self._level) < _SWEEP_MIN_NODES:
            return super()._support_levels(edge)
        marked = self._np_reachable([edge >> 1])
        marked[0] = False
        if not marked.any():
            return frozenset()
        levels = _np.frombuffer(self._level, dtype=_np.int64)
        return frozenset(_np.unique(levels[marked]).tolist())

    def _eval_batch(self, edge: int, columns, count: int):
        # Vectorized level-by-level walk: every assignment (row) steps
        # one BDD node per round, all rows at once.  Rounds are bounded
        # by the path depth, so the whole batch costs a few dozen
        # vector passes instead of count * depth Python iterations.
        if _np is None or count < 64:
            return super()._eval_batch(edge, columns, count)
        highs = _np.frombuffer(self._high, dtype=_np.int64)
        lows = _np.frombuffer(self._low, dtype=_np.int64)
        levels = _np.frombuffer(self._level, dtype=_np.int64)
        values = _np.zeros((len(self._var_names), count), dtype=bool)
        for level, col in columns.items():
            values[level] = _np.asarray(col, dtype=bool)
        cur = _np.full(count, edge, dtype=_np.int64)
        idx = _np.flatnonzero(cur > 1)
        while idx.size:
            e = cur[idx]
            nodes = e >> 1
            nxt = _np.where(values[levels[nodes], idx],
                            highs[nodes], lows[nodes]) ^ (e & 1)
            cur[idx] = nxt
            idx = idx[nxt > 1]
        return (cur == 0).tolist()

    # ------------------------------------------------------------------
    # Garbage collection (array-native compaction)
    # ------------------------------------------------------------------

    def _compact(self, marked: bytearray, before: int):
        levels = self._level
        highs = self._high
        lows = self._low
        if _np is not None and before > 2048:
            m = _np.frombuffer(marked, dtype=_np.uint8).astype(bool)
            survivors = _np.flatnonzero(m)
            remap_np = _np.zeros(before, dtype=_np.int64)
            remap_np[survivors] = _np.arange(len(survivors),
                                             dtype=_np.int64)
            hi = _np.frombuffer(highs, _np.int64)[survivors]
            lo = _np.frombuffer(lows, _np.int64)[survivors]
            hi = (remap_np[hi >> 1] << 1) | (hi & 1)
            lo = (remap_np[lo >> 1] << 1) | (lo & 1)
            new_level = array(
                "q", _np.frombuffer(levels, _np.int64)[survivors]
                .tobytes())
            new_high = array("q", hi.tobytes())
            new_low = array("q", lo.tobytes())
            remap = array("q", remap_np.tobytes())
        else:
            remap = array("q", bytes(8 * before))
            new_level = array("q")
            new_high = array("q")
            new_low = array("q")
            count = 0
            for node in range(before):
                if marked[node]:
                    remap[node] = count
                    count += 1
            for node in range(before):
                if marked[node]:
                    new_level.append(levels[node])
                    if node:
                        h = highs[node]
                        l = lows[node]
                        new_high.append((remap[h >> 1] << 1) | (h & 1))
                        new_low.append((remap[l >> 1] << 1) | (l & 1))
                    else:
                        new_high.append(0)
                        new_low.append(0)
        store = self._store
        store.level = new_level
        store.high = new_high
        store.low = new_low
        self._level = new_level
        self._high = new_high
        self._low = new_low
        count = len(new_level)
        unique = UniqueTable.sized_for(new_level, new_high, new_low,
                                       count)
        slots = unique.slots
        mask = unique.mask
        # Prior canonicity guarantees distinct keys: insert without
        # comparing.  Homes are precomputed vectorized when numpy is
        # around — int64 wraparound is harmless because `& mask` only
        # reads low bits, which two's complement preserves exactly.
        if _np is not None and count > 2048:
            homes = (((_np.frombuffer(new_level, _np.int64)[1:]
                       * MIX_A)
                      ^ (_np.frombuffer(new_high, _np.int64)[1:]
                         * MIX_B)
                      ^ (_np.frombuffer(new_low, _np.int64)[1:]
                         * MIX_C)) & mask).tolist()
            node = 1
            for i in homes:
                while slots[i]:
                    i = (i + 1) & mask
                slots[i] = node + 1
                node += 1
        else:
            for node in range(1, count):
                i = ((new_level[node] * MIX_A)
                     ^ (new_high[node] * MIX_B)
                     ^ (new_low[node] * MIX_C)) & mask
                while slots[i]:
                    i = (i + 1) & mask
                slots[i] = node + 1
        unique.used = count - 1
        self._unique = unique
        members: List[List[int]] = [[] for _ in self._var_names]
        for node in range(1, count):
            members[new_level[node]].append(node)
        self._level_members = members
        return remap


# ---------------------------------------------------------------------------
# Kernel registry
# ---------------------------------------------------------------------------

#: The selectable kernel names ("auto" resolves to the fast one).
KERNELS = ("dict", "array")

def _initial_default() -> str:
    """Start-of-process default: ``REPRO_KERNEL`` env var or "dict".

    The env hook exists so an unmodified test suite can run wholesale
    on a chosen kernel (CI's kernel-parity job sets
    ``REPRO_KERNEL=array``); inside a process, prefer
    :func:`kernel_context`.
    """
    name = os.environ.get("REPRO_KERNEL")
    if not name:
        return "dict"
    if name == "auto":
        return "array"
    if name not in KERNELS:
        raise ValueError(
            f"REPRO_KERNEL={name!r}: expected one of "
            f"{('auto',) + KERNELS}")
    return name


# Two layers of default, consulted in order by resolve_kernel(None):
#
# * ``_local.kernel`` — a *thread-local* overlay set by
#   :func:`kernel_context`.  Worker threads running different
#   ``Options(kernel=...)`` values concurrently (the job server's
#   normal state) each see only their own selection; without this, two
#   overlapping ``with kernel_context(...)`` blocks would race on one
#   process global and restore each other's state out of order.
# * ``_process_default`` — the process-wide fallback, from the
#   ``REPRO_KERNEL`` env var (or "dict").  :func:`set_default_kernel`
#   writes this one, and fresh threads inherit it.
_process_default = _initial_default()
_local = threading.local()


def default_kernel() -> str:
    """The kernel a bare ``BDD()`` constructs right now, this thread."""
    return getattr(_local, "kernel", None) or _process_default


def set_default_kernel(name: str) -> str:
    """Set the process-wide default kernel; returns the previous one.

    Accepts a concrete kernel name (``"auto"`` is resolved first).
    Prefer :func:`kernel_context` — it restores the previous default
    and is scoped to the calling thread, so concurrent contexts never
    interfere.
    """
    global _process_default
    resolved = resolve_kernel(name)
    previous = _process_default
    _process_default = resolved
    return previous


def resolve_kernel(name: Optional[str]) -> str:
    """Map a kernel request to a concrete kernel name.

    ``None`` means "whatever the current default is" (so existing
    ``BDD()`` call sites keep constructing the dict manager unless a
    context says otherwise); ``"auto"`` selects the fast array kernel.
    """
    if name is None:
        return default_kernel()
    if name == "auto":
        return "array"
    if name not in KERNELS:
        raise ValueError(
            f"unknown BDD kernel {name!r}; expected one of "
            f"{('auto',) + KERNELS}")
    return name


@contextmanager
def kernel_context(name: Optional[str]) -> Iterator[None]:
    """Make ``name`` the default kernel within the ``with`` block.

    Every ``BDD()`` constructed inside — by model factories, the fsm
    builder, anything — builds the selected kernel.  ``None`` is a
    no-op so call sites can pass an optional request through.  The
    override is **thread-local**: concurrent contexts on different
    threads (e.g. the job server's worker pool building models on
    different kernels at once) cannot observe or clobber each other.
    """
    if name is None:
        yield
        return
    resolved = resolve_kernel(name)
    previous = getattr(_local, "kernel", None)
    _local.kernel = resolved
    try:
        yield
    finally:
        _local.kernel = previous


def make_manager(kernel: Optional[str] = None,
                 max_nodes: Optional[int] = None,
                 time_limit: Optional[float] = None) -> BDD:
    """Construct a manager on an explicitly selected kernel."""
    return BDD(max_nodes=max_nodes, time_limit=time_limit,
               kernel=resolve_kernel(kernel))
