"""Levelized breadth-first apply/quantify engine for the array kernel.

The recursive apply path resolves one ``(f, g, h)`` subproblem per
Python iteration: hash the key, probe the computed cache, gather six
child words, push a frame.  CPython dicts already run that loop near
the floor, which is why the flat array kernel only *tied* on
apply-dominated cells.  This module replaces the recursion with the
level-by-level sweep of Sølvsten & van de Pol's Adiar line ("Efficient
BDD Manipulation in External Memory", "Symbolic Model Checking in
External Memory" — see PAPERS.md): operations become batches of
*requests* processed one level at a time,

* a **top-down sweep** expands each level's pending request batch into
  child requests with numpy gathers on the NodeStore columns, dedups
  the batch with one sort-based unique pass (the batch analogue of the
  computed cache), resolves terminal rewrites vectorized, and buckets
  surviving children by their top level;

* a **bottom-up reduce** walks the recorded levels deepest-first,
  bulk-``mk``-ing each level through :meth:`ArrayBDD._mk_batch`
  (vectorized redundant-node elimination + sort-based unique + one
  amortized column extend) and scattering results into the parent
  batches' destination slots.

Per-request Python cost drops to a few vector-lane operations; only
genuinely *new* nodes pay a per-node unique-table probe.

Quantification rides the same sweep with a richer request shape: a
request **row** is a set of packed conjunction pairs ``(a << 32) | b``
denoting ``exists_S(OR_i (a_i AND b_i))`` — ``a == 0`` packs the plain
item ``b`` (``0`` is the True edge).  ``exists`` distributes over OR,
so a *quantified* level unions the then/else cofactor rows into one
child row instead of building a node; rows are kept canonical (sorted,
deduplicated, complement pairs collapsed) so the sort-based unique
merges equivalent requests.  Row width is capped; a row that outgrows
the cap falls back to the recursive path for just that subproblem at
reduce time.

Mode selection lives here too (mirroring the kernel registry):
``Options(apply=...)`` / CLI ``--apply`` / ``REPRO_APPLY`` pick
``recursive`` | ``levelized`` | ``auto``; ``auto`` starts every
operation on the cheap recursive path and restarts it levelized once
the recursion has proven large (its cache-miss count — the live
request count — crosses :data:`DEFAULT_AUTO_THRESHOLD`).  The work the
recursive prefix did is not wasted: its nodes and cache entries stand.

Results are **function-identical** to the recursive path (same
canonical BDDs for the same operands) but not edge-identical: a
breadth-first sweep allocates the same nodes in a different order, so
integer edge values and allocation counters may differ between modes.
The cross-*kernel* edge-identity contract is unchanged — both kernels
under the same apply mode stay comparable via isomorphism
(``tests/test_kernel_parity.py`` enforces this differentially).

The engine requires numpy; without it every mode resolves to the
recursive path (selection stays valid, nothing breaks).
"""

from __future__ import annotations

import os
import threading
from contextlib import contextmanager
from typing import Iterator, Optional

from .nodestore import MIX_A, MIX_B, MIX_C

try:  # optional: the engine is numpy-only, selection never is
    import numpy as _np
except ImportError:  # pragma: no cover - exercised where numpy is absent
    _np = None

__all__ = ["APPLY_MODES", "DEFAULT_AUTO_THRESHOLD", "LevelizedApply",
           "SwitchToLevelized", "default_apply", "set_default_apply",
           "resolve_apply", "apply_context", "levelized_available"]

#: The selectable apply modes (``auto`` = recursive until an op grows
#: past the request threshold, then restart that op levelized).
APPLY_MODES = ("recursive", "levelized", "auto")

#: ``auto`` switches an operation to the levelized engine once its
#: recursive descent has counted this many cache misses (= live
#: requests).  Below it, sweep setup costs more than it saves; the
#: crossover is measured honestly in ``benchmarks/bench_micro_bddops.py``
#: and disclosed in BENCH_kernel.json.
DEFAULT_AUTO_THRESHOLD = 2048

#: A quantification row wider than this falls back to the recursive
#: path for that subproblem (width doubles per quantified level in the
#: worst case; real relprods stay narrow).
MAX_ROW_WIDTH = 64

#: Per-level computed-cache probing samples this many unique requests
#: first and only probes the whole level if at least a quarter of the
#: sample hit — cold sweeps pay O(sample) probes per level, warm
#: resweeps get full subtree pruning.
PROBE_SAMPLE = 64

#: Reduce seeds the computed cache for every level this narrow (and for
#: levels whose probe ran warm); wider cold levels would just cycle the
#: direct-mapped cache without pruning anything next sweep.
STORE_CAP = 4096

#: Sentinel padding word for quantification rows; sorts after every
#: real packed pair and never collides with one (edges stay < 2**32).
_SENT = 1 << 62

#: Node-id ceiling for the packed-pair representation; stores beyond it
#: (would be >32 GiB of columns) use the recursive path.
MAX_PACK_NODES = 1 << 30


class SwitchToLevelized(Exception):
    """Internal: a recursive descent crossed the auto threshold.

    Raised from the miss site of the array kernel's recursive loops
    (which keep no external state mid-descent, so unwinding is free)
    and caught at the operation entry, which restarts the operation on
    the levelized engine with its canonical arguments.
    """


def levelized_available() -> bool:
    """Whether the levelized engine can run in this process."""
    return _np is not None


# ---------------------------------------------------------------------------
# Apply-mode registry (mirrors the kernel registry in kernel.py)
# ---------------------------------------------------------------------------

def _initial_default() -> str:
    """Start-of-process default: ``REPRO_APPLY`` env var or "recursive".

    The env hook exists so an unmodified test suite can run wholesale
    on a chosen apply path (CI's levelized leg sets
    ``REPRO_APPLY=levelized REPRO_KERNEL=array``); inside a process,
    prefer :func:`apply_context`.
    """
    name = os.environ.get("REPRO_APPLY")
    if not name:
        return "recursive"
    if name not in APPLY_MODES:
        raise ValueError(
            f"REPRO_APPLY={name!r}: expected one of {APPLY_MODES}")
    return name


_process_default = _initial_default()
_local = threading.local()


def default_apply() -> str:
    """The apply mode a fresh manager adopts right now, this thread."""
    return getattr(_local, "apply", None) or _process_default


def set_default_apply(name: str) -> str:
    """Set the process-wide default apply mode; returns the previous.

    Prefer :func:`apply_context` — it restores the previous default and
    is scoped to the calling thread.
    """
    global _process_default
    resolved = resolve_apply(name)
    previous = _process_default
    _process_default = resolved
    return previous


def resolve_apply(name: Optional[str]) -> str:
    """Map an apply-mode request to a concrete mode name.

    ``None`` means "whatever the current default is", so engines can
    pass ``Options.apply`` straight through.
    """
    if name is None:
        return default_apply()
    if name not in APPLY_MODES:
        raise ValueError(
            f"unknown apply mode {name!r}; expected one of {APPLY_MODES}")
    return name


@contextmanager
def apply_context(name: Optional[str]) -> Iterator[None]:
    """Make ``name`` the default apply mode within the ``with`` block.

    Thread-local, like :func:`~repro.bdd.kernel.kernel_context`:
    concurrent contexts on different worker threads cannot clobber each
    other.  ``None`` is a no-op pass-through.
    """
    if name is None:
        yield
        return
    resolved = resolve_apply(name)
    previous = getattr(_local, "apply", None)
    _local.apply = resolved
    try:
        yield
    finally:
        _local.apply = previous


# ---------------------------------------------------------------------------
# The engine
# ---------------------------------------------------------------------------

class LevelizedApply:
    """Breadth-first apply/quantify sweeps over one :class:`ArrayBDD`.

    Stateless between calls (every sweep builds its own batches), so
    re-entrant nesting — a row-overflow fallback calling back into the
    manager — is safe.  Constructed lazily by the kernel on first use.
    """

    def __init__(self, manager) -> None:
        self.m = manager

    # -- shared helpers ------------------------------------------------

    def _views(self):
        """Zero-copy column views.  Only valid while no node is created
        (appending to an ``array('q')`` with exported buffers raises
        BufferError) — the top-down sweeps allocate nothing, the reduce
        phase never holds views across a ``_mk_batch``."""
        m = self.m
        levels = _np.frombuffer(m._level, dtype=_np.int64)
        highs = _np.frombuffer(m._high, dtype=_np.int64)
        lows = _np.frombuffer(m._low, dtype=_np.int64)
        return levels, highs, lows

    def _alloc(self, slots, fill, extra):
        """Grow the result-slot arena to hold ``extra`` more entries."""
        need = fill + extra
        if need > slots.shape[0]:
            grown = _np.zeros(max(need, 2 * slots.shape[0]),
                              dtype=_np.int64)
            grown[:fill] = slots[:fill]
            return grown
        return slots

    # ==================================================================
    # ITE sweep
    # ==================================================================

    def ite(self, f: int, g: int, h: int) -> int:
        """Canonical ITE, breadth-first.

        Arguments must already be canonicalized by the caller (f, g
        regular, no terminal/rewrite case applicable) — exactly the
        state at the recursive loop's cache-miss point, which is where
        the kernel dispatches here.
        """
        m = self.m
        m._levelized_calls += 1
        levels, highs, lows = self._views()
        cache = m._ite_cache
        top = int(min(levels[f >> 1], levels[g >> 1], levels[h >> 1]))
        slots = _np.zeros(1024, dtype=_np.int64)
        fill = 1
        one = _np.ones(1, dtype=_np.int64)
        pend = {top: [(one * f, one * g, one * h,
                       _np.zeros(1, dtype=_np.int64),
                       _np.zeros(1, dtype=_np.int64))]}
        records = []
        requests = 0
        peak_width = 0
        hits = 0
        misses = 0
        while pend:
            level = min(pend)
            chunks = pend.pop(level)
            F = _np.concatenate([c[0] for c in chunks])
            G = _np.concatenate([c[1] for c in chunks])
            H = _np.concatenate([c[2] for c in chunks])
            NEG = _np.concatenate([c[3] for c in chunks])
            DEST = _np.concatenate([c[4] for c in chunks])
            requests += F.shape[0]
            if F.shape[0] > peak_width:
                peak_width = F.shape[0]
            # Sort-based unique over the request triple — the batch
            # analogue of the computed cache (duplicates collapse here
            # instead of hitting a per-node hash probe).
            order = _np.lexsort((H, G, F))
            Fs, Gs, Hs = F[order], G[order], H[order]
            new = _np.ones(Fs.shape[0], dtype=bool)
            new[1:] = ((Fs[1:] != Fs[:-1]) | (Gs[1:] != Gs[:-1])
                       | (Hs[1:] != Hs[:-1]))
            uidx = _np.flatnonzero(new)
            Fu, Gu, Hu = Fs[uidx], Gs[uidx], Hs[uidx]
            n_u = Fu.shape[0]
            inv = _np.empty(Fs.shape[0], dtype=_np.int64)
            inv[order] = _np.cumsum(new) - 1
            # Probe the computed cache per *unique* request — every hit
            # prunes an entire subtree of child requests, which is what
            # keeps repeated image/product computations from being
            # recomputed sweep after sweep.  The probe is a Python loop
            # (the cache is a plain list), so it is *adaptive*: sample
            # the first few requests and only probe the rest of the
            # level if the sample hit often enough.  Cold sweeps — the
            # large single operations the engine exists for — pay a
            # handful of probes per level; warm resweeps get full
            # subtree pruning.
            cdata = cache.data
            cmask = cache.mask
            fl, gl, hl = Fu.tolist(), Gu.tolist(), Hu.tolist()
            # Hash indices come out of one vectorized pass: int64
            # multiply wraps mod 2**64, whose low bits (all the mask
            # keeps) match the arbitrary-precision arithmetic of the
            # scalar probe sites exactly.
            idxs = ((((Fu * MIX_A) ^ (Gu * MIX_B) ^ (Hu * MIX_C))
                     & cmask) << 2).tolist()
            hit_j = []
            hit_v = []
            sample = n_u if n_u <= PROBE_SAMPLE else PROBE_SAMPLE
            for j in range(sample):
                i4 = idxs[j]
                if cdata[i4] == fl[j] and cdata[i4 + 1] == gl[j] \
                        and cdata[i4 + 2] == hl[j]:
                    hit_j.append(j)
                    hit_v.append(cdata[i4 + 3])
            warm = 4 * len(hit_j) >= sample
            if warm and sample < n_u:
                for j in range(sample, n_u):
                    i4 = idxs[j]
                    if cdata[i4] == fl[j] and cdata[i4 + 1] == gl[j] \
                            and cdata[i4 + 2] == hl[j]:
                        hit_j.append(j)
                        hit_v.append(cdata[i4 + 3])
            n_live = n_u - len(hit_j)
            hits += len(hit_j)
            misses += n_live
            if not hit_j:
                live = None
                hitres = None
            else:
                hitres = _np.zeros(n_u, dtype=_np.int64)
                hitres[hit_j] = _np.array(hit_v, dtype=_np.int64)
                keep = _np.ones(n_u, dtype=bool)
                keep[hit_j] = False
                live = _np.flatnonzero(keep)
                if n_live == 0:
                    records.append((level, 0, 0, None, inv, NEG, DEST,
                                    hitres, None, False))
                    continue
                Fu, Gu, Hu = Fu[live], Gu[live], Hu[live]
            # Storing every deep level of a huge cold sweep would just
            # cycle the direct-mapped cache; shallow levels (few, with
            # the biggest subtrees behind them) are the valuable ones.
            store_ok = warm or n_live <= STORE_CAP
            base = fill
            slots = self._alloc(slots, fill, 2 * n_live)
            fill += 2 * n_live
            # Cofactors at this level (f, g regular; h may be signed).
            nf, ng, nh = Fu >> 1, Gu >> 1, Hu >> 1
            at = levels[nf] == level
            f1 = _np.where(at, highs[nf], Fu)
            f0 = _np.where(at, lows[nf], Fu)
            at = levels[ng] == level
            g1 = _np.where(at, highs[ng], Gu)
            g0 = _np.where(at, lows[ng], Gu)
            at = levels[nh] == level
            sign = Hu & 1
            h1 = _np.where(at, highs[nh] ^ sign, Hu)
            h0 = _np.where(at, lows[nh] ^ sign, Hu)
            dest1 = base + 2 * _np.arange(n_live, dtype=_np.int64)
            self._route_ite(levels, slots, f1, g1, h1, dest1, pend)
            self._route_ite(levels, slots, f0, g0, h0, dest1 + 1, pend)
            records.append((level, base, n_live, live, inv, NEG, DEST,
                            hitres, (Fu, Gu, Hu), store_ok))
        del levels, highs, lows
        m._levelized_requests += requests
        if peak_width > m._levelized_peak_width:
            m._levelized_peak_width = peak_width
        m._ite_hits += hits
        m._ite_misses += misses
        for (level, base, n_live, live, inv, NEG, DEST, hitres,
             keys, store_ok) in reversed(records):
            if n_live:
                r1 = slots[base:base + 2 * n_live:2]
                r0 = slots[base + 1:base + 2 * n_live:2]
                solved = m._mk_level(level, r1, r0)
                if store_ok:
                    # Seed the computed cache so the next sweep (and
                    # the recursive path) can reuse the results.  Bulk
                    # inline store: indices vectorized, accounting
                    # batched, the grow trigger checked once per level
                    # (a grow drops this level's stores — they are
                    # hints, same policy as OpCache.grow()).
                    Fu, Gu, Hu = keys
                    fl, gl, hl = Fu.tolist(), Gu.tolist(), Hu.tolist()
                    sl = solved.tolist()
                    cdata = cache.data
                    cmask = cache.mask
                    sidx = ((((Fu * MIX_A) ^ (Gu * MIX_B)
                              ^ (Hu * MIX_C)) & cmask) << 2).tolist()
                    used = cache.used
                    pressure = cache.pressure
                    evictions = cache.evictions
                    for j in range(n_live):
                        i4 = sidx[j]
                        fj, gj, hj = fl[j], gl[j], hl[j]
                        if cdata[i4] == 0:
                            used += 1
                        elif cdata[i4] != fj or cdata[i4 + 1] != gj \
                                or cdata[i4 + 2] != hj:
                            evictions += 1
                            pressure += 1
                        cdata[i4] = fj
                        cdata[i4 + 1] = gj
                        cdata[i4 + 2] = hj
                        cdata[i4 + 3] = sl[j]
                    cache.used = used
                    cache.pressure = pressure
                    cache.evictions = evictions
                    if used + pressure > cache.grow_at:
                        cache.grow()
                if live is None:
                    out = solved
                else:
                    out = hitres
                    out[live] = solved
            else:
                out = hitres
            slots[DEST] = out[inv] ^ NEG
        return int(slots[0])

    def _route_ite(self, levels, slots, f, g, h, dest, pend) -> None:
        """Vectorized terminal/rewrite/canonicalize for one child batch.

        Resolved children scatter straight into their destination
        slots; survivors are canonicalized (f regular via the swap
        rule, g regular via negation extraction) and bucketed by top
        level.  The rule chain and its order are the recursive loop's,
        vectorized — each ``_set`` claims rows exactly once, in
        priority order.
        """
        n = f.shape[0]
        res = _np.zeros(n, dtype=_np.int64)
        done = _np.zeros(n, dtype=bool)

        def _set(mask, value):
            claim = mask & ~done
            if claim.any():
                res[claim] = value[claim] if hasattr(value, "shape") \
                    else value
                done[claim] = True

        _set(f == 0, g)
        _set(f == 1, h)
        # Operand rewrites (safe sequentially: a rewritten 0/1 can
        # never equal f or f^1, which are >= 2 on undone rows).
        g = _np.where(g == f, 0, g)
        g = _np.where(g == (f ^ 1), 1, g)
        h = _np.where(h == f, 1, h)
        h = _np.where(h == (f ^ 1), 0, h)
        _set(g == h, g)
        _set((g == 0) & (h == 1), f)
        _set((g == 1) & (h == 0), f ^ 1)
        if done.all():
            slots[dest] = res
            return
        live = ~done
        if done.any():
            slots[dest[done]] = res[done]
            f, g, h, dest = f[live], g[live], h[live], dest[live]
        # Canonicalize: regular f (swap branches under ~f), then
        # regular g (extract the result negation).
        swap = (f & 1).astype(bool)
        f = _np.where(swap, f ^ 1, f)
        g2 = _np.where(swap, h, g)
        h2 = _np.where(swap, g, h)
        neg = g2 & 1
        g2 ^= neg
        h2 ^= neg
        tops = _np.minimum(_np.minimum(levels[f >> 1], levels[g2 >> 1]),
                           levels[h2 >> 1])
        for level in _np.unique(tops):
            sel = tops == level
            pend.setdefault(int(level), []).append(
                (f[sel], g2[sel], h2[sel], neg[sel], dest[sel]))

    # ==================================================================
    # Quantification sweep (exists / and_exists unified)
    # ==================================================================

    def exists(self, f: int, levelset: frozenset, levels_key: int,
               max_level: int) -> int:
        """``exists_S f`` for a non-terminal f with top level in range."""
        row = _np.array([f], dtype=_np.int64)
        return self._quantify(row, levelset, levels_key, max_level,
                              "quant")

    def and_exists(self, f: int, g: int, levelset: frozenset,
                   levels_key: int, max_level: int) -> int:
        """``exists_S (f AND g)`` past the recursive special cases."""
        if f > g:
            f, g = g, f
        row = _np.array([(f << 32) | g], dtype=_np.int64)
        return self._quantify(row, levelset, levels_key, max_level,
                              "andex")

    def _quantify(self, seed_row, levelset, levels_key, max_level,
                  kind) -> int:
        m = self.m
        m._levelized_calls += 1
        levels, highs, lows = self._views()
        slots = _np.zeros(1024, dtype=_np.int64)
        fill = 1
        pend = {}
        overflow = []
        records = []
        requests = 0
        peak_width = 0
        row, resv, tops = self._normalize(levels, seed_row[None, :],
                                          max_level)
        if resv[0] >= 0:
            return int(resv[0])
        pend[int(tops[0])] = [(row, _np.zeros(1, dtype=_np.int64))]
        while pend:
            level = min(pend)
            chunks = pend.pop(level)
            width = max(c[0].shape[1] for c in chunks)
            R = _np.concatenate([
                _np.pad(c[0], ((0, 0), (0, width - c[0].shape[1])),
                        constant_values=_SENT)
                if c[0].shape[1] < width else c[0] for c in chunks])
            DEST = _np.concatenate([c[1] for c in chunks])
            requests += R.shape[0]
            if R.shape[0] > peak_width:
                peak_width = R.shape[0]
            Ru, inv = _np.unique(R, axis=0, return_inverse=True)
            inv = inv.reshape(-1).astype(_np.int64)
            n_u = Ru.shape[0]
            valid = Ru != _SENT
            a = _np.where(valid, Ru >> 32, 0)
            b = _np.where(valid, Ru & 0xFFFFFFFF, 0)
            a1, a0 = self._cofactor(levels, highs, lows, a, level)
            b1, b0 = self._cofactor(levels, highs, lows, b, level)
            T = self._pack_pairs(a1, b1, valid)
            E = self._pack_pairs(a0, b0, valid)
            quantified = level in levelset
            if quantified:
                base = fill
                slots = self._alloc(slots, fill, n_u)
                fill += n_u
                C = _np.concatenate((T, E), axis=1)
                dests = base + _np.arange(n_u, dtype=_np.int64)
                self._route_rows(levels, slots, C, dests, pend,
                                 overflow, max_level)
                records.append(("pass", level, base, n_u, inv, DEST))
            else:
                base = fill
                slots = self._alloc(slots, fill, 2 * n_u)
                fill += 2 * n_u
                dest1 = base + 2 * _np.arange(n_u, dtype=_np.int64)
                self._route_rows(levels, slots, T, dest1, pend,
                                 overflow, max_level)
                self._route_rows(levels, slots, E, dest1 + 1, pend,
                                 overflow, max_level)
                records.append(("mk", level, base, n_u, inv, DEST))
        del levels, highs, lows
        m._levelized_requests += requests
        if peak_width > m._levelized_peak_width:
            m._levelized_peak_width = peak_width
        # Every unique surviving row is a live subproblem the sweep had
        # to solve — the batch analogue of a computed-cache miss.
        solved = sum(r[3] for r in records)
        if kind == "quant":
            m._quant_misses += solved
        else:
            m._andex_misses += solved
        # Row-width overflows resolve recursively, before the reduce
        # touches their destination slots (and after every view above
        # is gone — these calls create nodes).
        for dest, items in overflow:
            slots[dest] = self._scalar_row(items, levelset, levels_key,
                                           max_level)
        for kind, level, base, n_u, inv, DEST in reversed(records):
            if kind == "pass":
                out = slots[base:base + n_u]
            else:
                r1 = slots[base:base + 2 * n_u:2]
                r0 = slots[base + 1:base + 2 * n_u:2]
                out = m._mk_level(level, r1, r0)
            slots[DEST] = out[inv]
        return int(slots[0])

    def _cofactor(self, levels, highs, lows, x, level):
        """Per-item then/else cofactors at ``level`` (matrix-shaped)."""
        node = x >> 1
        at = levels[node] == level
        sign = x & 1
        x1 = _np.where(at, highs[node] ^ sign, x)
        x0 = _np.where(at, lows[node] ^ sign, x)
        return x1, x0

    def _pack_pairs(self, a, b, valid):
        """Vectorized conjunction-pair rewrite + repack.

        ``(a AND b)`` with constants folded: either side False kills
        the pair (-> _SENT), either side True drops out of the
        conjunction, ``a == b`` collapses, ``a == NOT b`` kills.  The
        survivor is packed ``(min << 32) | max``; a plain item packs as
        itself (``a == 0`` is the True edge).
        """
        lo = _np.minimum(a, b)
        hi = _np.maximum(a, b)
        p = (lo << 32) | hi
        p = _np.where(lo == hi, lo, p)              # a AND a = a
        p = _np.where(lo == (hi ^ 1), _SENT, p)     # a AND ~a = False
        p = _np.where(lo == 0, hi, p)               # True AND b = b
        p = _np.where((lo == 1) | (hi == 1), _SENT, p)  # False AND *
        return _np.where(valid, p, _SENT)

    def _normalize(self, levels, M, max_level):
        """Canonicalize rows of packed pairs to fixpoint.

        Sort, drop duplicates, collapse complement-adjacent pairs
        ``(a,b),(a,~b) -> a`` (for plain items this folds ``t, ~t`` to
        the True pair 0).  Returns ``(rows, resolved, tops)`` where
        ``resolved[i] >= 0`` is a final edge, ``-2`` flags a row-width
        overflow, and ``-1`` means the row is a live request whose top
        level is ``tops[i]``.
        """
        M = _np.sort(M, axis=1)
        while True:
            changed = False
            if M.shape[1] > 1:
                dup = (M[:, 1:] == M[:, :-1]) & (M[:, 1:] != _SENT)
                if dup.any():
                    M[:, 1:][dup] = _SENT
                    M = _np.sort(M, axis=1)
                    changed = True
                coll = ((M[:, 1:] == (M[:, :-1] ^ 1))
                        & (M[:, :-1] != _SENT) & ((M[:, :-1] & 1) == 0))
                if coll.any():
                    rows, cols = _np.nonzero(coll)
                    M[rows, cols] = M[rows, cols] >> 32
                    M[rows, cols + 1] = _SENT
                    M = _np.sort(M, axis=1)
                    changed = True
            if not changed:
                break
        live = M != _SENT
        count = live.sum(axis=1)
        resolved = _np.full(M.shape[0], -1, dtype=_np.int64)
        resolved[count == 0] = 1                      # empty OR = False
        resolved[(M == 0).any(axis=1)] = 0            # True pair
        first = M[:, 0]
        single_item = (count == 1) & (first < (1 << 32)) & (first >= 2)
        if single_item.any():
            below = _np.zeros(M.shape[0], dtype=bool)
            below[single_item] = (levels[first[single_item] >> 1]
                                  > max_level)
            sel = single_item & below & (resolved == -1)
            resolved[sel] = first[sel]
        if M.shape[1] > MAX_ROW_WIDTH:
            resolved[(resolved == -1)
                     & (count > MAX_ROW_WIDTH)] = -2
        # Top level per live row: min over item tops (a-part and
        # b-part); SENT and constants land on the terminal level.
        x = _np.where(live, M, 0)
        atop = levels[_np.where(x >= (1 << 32), x >> 32, 0) >> 1]
        btop = levels[(x & 0xFFFFFFFF) >> 1]
        item_top = _np.minimum(atop, btop)
        item_top[~live] = levels[0]
        tops = item_top.min(axis=1)
        width = int(count.max()) if M.shape[0] else 0
        M = M[:, :max(width, 1)]
        return M, resolved, tops

    def _route_rows(self, levels, slots, M, dests, pend, overflow,
                    max_level) -> None:
        """Normalize child rows, scatter resolutions, bucket the rest."""
        M, resolved, tops = self._normalize(levels, M, max_level)
        done = resolved >= 0
        if done.any():
            slots[dests[done]] = resolved[done]
        over = resolved == -2
        for i in _np.flatnonzero(over):
            items = tuple(int(p) for p in M[i] if p != _SENT)
            overflow.append((int(dests[i]), items))
        liverow = ~done & ~over
        if not liverow.any():
            return
        M, dests, tops = M[liverow], dests[liverow], tops[liverow]
        for level in _np.unique(tops):
            sel = tops == level
            pend.setdefault(int(level), []).append((M[sel], dests[sel]))

    def _scalar_row(self, items, levelset, levels_key, max_level) -> int:
        """Recursive fallback for one overflowed row.

        ``exists`` distributes over OR, so the row is the OR of one
        recursive ``and_exists``/``exists`` per packed pair.  Runs at
        reduce time (no column views are live, so node creation is
        safe).  The manager's mode is pinned to ``recursive`` for the
        duration so the fallback cannot re-enter the engine.
        """
        m = self.m
        saved = m.apply_mode
        m.apply_mode = "recursive"
        try:
            out = 1
            for p in items:
                if p >= (1 << 32):
                    r = m._and_exists(p >> 32, p & 0xFFFFFFFF, levelset,
                                      levels_key, max_level)
                else:
                    r = m._exists(p, levelset, levels_key, max_level)
                out = m._ite(r, 0, out)
                if out == 0:
                    return 0
            return out
        finally:
            m.apply_mode = saved
