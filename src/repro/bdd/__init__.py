"""ROBDD package with complement edges (substrate S1).

Public surface:

* :class:`BDD` — the manager (unique table, caches, budgets).
* :class:`Function` — an immutable Boolean function handle.
* :func:`shared_size` / :func:`profile` — the paper's ``BDDSize`` with
  node sharing.
* :func:`bounded_and` — size-bounded conjunction (paper Section V).
* :func:`sat_count` / :func:`pick_one` / :func:`iter_assignments`.
* :func:`interleaved` / :func:`blocked` — variable-order recipes.
* :func:`sift` / :meth:`BDD.swap_levels` — in-place dynamic reordering.
* :func:`to_dot` — Graphviz export.
"""

from .manager import BDD, BudgetExceededError, EpochGuard, Function, \
    TERMINAL_LEVEL
from .kernel import ArrayBDD, KERNELS, default_kernel, kernel_context, \
    make_manager, resolve_kernel, set_default_kernel
from .sizing import SizeMemo, format_profile, individual_sizes, profile, \
    shared_size
from .bounded import bounded_and
from .simplify import restrict_multi
from .satisfy import iter_assignments, pick_one, sat_count
from .order import blocked, interleaved
from .dot import to_dot
from .transfer import copy_function, order_sensitivity
from .reorder import improve_order, order_cost
from .sift import SiftResult, sift

__all__ = [
    "BDD",
    "ArrayBDD",
    "KERNELS",
    "default_kernel",
    "set_default_kernel",
    "resolve_kernel",
    "kernel_context",
    "make_manager",
    "EpochGuard",
    "Function",
    "BudgetExceededError",
    "TERMINAL_LEVEL",
    "SizeMemo",
    "shared_size",
    "individual_sizes",
    "profile",
    "format_profile",
    "bounded_and",
    "restrict_multi",
    "sat_count",
    "pick_one",
    "iter_assignments",
    "interleaved",
    "blocked",
    "to_dot",
    "copy_function",
    "order_sensitivity",
    "improve_order",
    "order_cost",
    "sift",
    "SiftResult",
]
