"""Variable-order search — an offline sifting-style optimizer.

The paper (like us) fixes variable orders up front with the
interleaved-bitslice heuristic; David Long's package could also sift
dynamically.  We provide the offline equivalent: given a set of
functions, :func:`improve_order` hill-climbs over adjacent
transpositions (each trial evaluated by rebuilding the functions in a
scratch manager via :func:`~repro.bdd.transfer.copy_function`) and
returns the best order found.  :meth:`BDD.reorder` then applies an
order to a live manager in place.

This is a tool for experiments and model development, not a hot-path
optimization: every trial costs a full rebuild of the function set.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from .manager import BDD, Function
from .transfer import copy_function

__all__ = ["improve_order", "order_cost"]


def order_cost(functions: Sequence[Function],
               order: Sequence[str]) -> int:
    """Shared node count of ``functions`` rebuilt under ``order``."""
    if not functions:
        return 0
    scratch = BDD()
    for name in order:
        scratch.new_var(name)
    copies = [copy_function(fn, scratch) for fn in functions]
    return scratch.count_nodes(copies)


def improve_order(functions: Sequence[Function],
                  max_passes: int = 3,
                  start_order: Optional[Sequence[str]] = None
                  ) -> Tuple[List[str], int]:
    """Hill-climb adjacent swaps; returns ``(best_order, best_cost)``.

    The search covers only the functions' combined support (other
    manager variables keep their relative positions when the result is
    fed to :meth:`BDD.reorder`: extend it yourself or reorder a manager
    that holds exactly these variables).  Each pass sweeps all adjacent
    pairs once and keeps every improving swap; passes stop early when a
    sweep finds nothing.
    """
    if not functions:
        return ([], 0)
    manager = functions[0].bdd
    support: set = set()
    for fn in functions:
        support |= fn.support()
    if start_order is None:
        order = [name for name in manager.var_names if name in support]
    else:
        if set(start_order) != support:
            raise ValueError("start_order must cover exactly the support")
        order = list(start_order)
    best_cost = order_cost(functions, order)
    for _ in range(max_passes):
        improved = False
        for index in range(len(order) - 1):
            trial = list(order)
            trial[index], trial[index + 1] = trial[index + 1], trial[index]
            cost = order_cost(functions, trial)
            if cost < best_cost:
                best_cost = cost
                order = trial
                improved = True
        if not improved:
            break
    return (order, best_cost)
