"""Variable-order search, now running on in-place sifting.

The paper (like us) fixes variable orders up front with the
interleaved-bitslice heuristic; David Long's package could also sift
dynamically.  :func:`improve_order` used to emulate that offline — one
full scratch-manager rebuild per adjacent-transposition trial — but it
now drives :func:`repro.bdd.sift.sift` directly on the live manager:
each pass costs a sequence of O(two-level) swaps instead of whole-set
rebuilds, and the manager is *left under the best order found* (this
is a mutating optimizer, matching :meth:`BDD.sift`).

:func:`order_cost` keeps the scratch-rebuild evaluation — it is the
order-independent ground truth the sift tests cross-check against —
but the scratch manager now inherits the live manager's node and time
budgets, so an order search can no longer silently blow past the
limits a run was started under.  :exc:`BudgetExceededError` from
either function leaves the live manager consistent;
:func:`improve_order` catches it and returns the partially improved
order.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from .manager import BDD, BudgetExceededError, Function
from .transfer import copy_function

__all__ = ["improve_order", "order_cost"]


def order_cost(functions: Sequence[Function],
               order: Sequence[str]) -> int:
    """Shared node count of ``functions`` rebuilt under ``order``.

    Evaluated in a scratch manager (the live one is untouched) that
    inherits the live manager's ``max_nodes`` and any active deadline:
    a trial too expensive for the run's budgets raises
    :exc:`BudgetExceededError` instead of quietly consuming memory the
    engines believe is capped.
    """
    if not functions:
        return 0
    manager = functions[0].bdd
    scratch = BDD(max_nodes=manager.max_nodes)
    scratch._deadline = manager._deadline
    for name in order:
        scratch.new_var(name)
    copies = [copy_function(fn, scratch) for fn in functions]
    return scratch.count_nodes(copies)


def improve_order(functions: Sequence[Function],
                  max_passes: int = 3,
                  start_order: Optional[Sequence[str]] = None
                  ) -> Tuple[List[str], int]:
    """Sift the functions' manager in place; returns ``(order, cost)``.

    Runs up to ``max_passes`` Rudell sifting passes on the *live*
    manager (no scratch rebuilds), stopping early when a pass stops
    improving the functions' shared node count.  The manager is left
    under the final order; the returned order lists the functions'
    combined support in manager order, ready to feed back to
    :meth:`BDD.reorder` elsewhere, and the returned cost is the
    functions' shared node count under it (identical to
    :func:`order_cost` of that order, since variables outside the
    support never appear in the functions).

    ``start_order`` (covering exactly the support) is applied first via
    :meth:`BDD.reorder`, keeping non-support variables in place.  A
    budget exhausted mid-search aborts cleanly: the
    :exc:`BudgetExceededError` is swallowed and the best order reached
    so far is returned — the manager is always left consistent.
    """
    if not functions:
        return ([], 0)
    manager = functions[0].bdd
    support: set = set()
    for fn in functions:
        support |= fn.support()
    if start_order is not None:
        if set(start_order) != support:
            raise ValueError("start_order must cover exactly the support")
        sequence = iter(start_order)
        full = [next(sequence) if name in support else name
                for name in manager.var_names]
        manager.reorder(full)
    best_cost = manager.count_nodes(functions)
    for _ in range(max_passes):
        try:
            manager.sift(max_growth=1.2)
        except BudgetExceededError:
            break
        cost = manager.count_nodes(functions)
        if cost >= best_cost:
            break
        best_cost = cost
    order = [name for name in manager.var_names if name in support]
    return (order, manager.count_nodes(functions))
