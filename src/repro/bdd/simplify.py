"""Simultaneous multi-care-set simplification (paper Section V).

The paper's future-work section describes the exact failure mode this
module fixes:

    "we frequently encounter a situation where we wish to simplify a
    BDD f by two other BDDs c1 and c2.  Simplifying f by either c1 or
    c2, however, results in a several-fold increase in the size of f,
    and then simplifying the large resulting BDD by the other c shrinks
    the final result to something much smaller than the original f.
    ... We really wish to simplify by c1 and c2, which gives a smaller
    care-set, but we can't afford to build the BDD for c1 and c2.
    What's needed, therefore, is a routine that simplifies using
    multiple BDDs simultaneously."

:func:`restrict_multi` is that routine: a Restrict-style traversal that
carries the care set as an *implicit conjunction* — a tuple of BDDs
cofactored in lockstep with ``f`` — so the conjunction is never built.
A branch whose care tuple contains the constant False is entirely
don't-care and contributes no nodes at all.

Soundness: the result agrees with ``f`` wherever **all** care BDDs are
true.  When a traversal reaches a variable that ``f`` does not depend
on, each care BDD is existentially quantified independently; that
over-approximates the joint care set (quantification does not
distribute over conjunction), which can only make the result agree
with ``f`` on *more* points — still sound, merely less aggressive.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from .manager import BDD, Function

__all__ = ["restrict_multi"]

#: Sentinel: this whole branch is outside the care set.
_FREE = -1


def restrict_multi(fn: Function, cares: Sequence[Function]) -> Function:
    """Simplify ``fn`` against the implicit conjunction of ``cares``.

    Equivalent in contract to ``fn.restrict(c1 & c2 & ...)`` — the
    result agrees with ``fn`` wherever every care BDD holds — but the
    conjunction of the care BDDs is never constructed.

    An empty or all-True care list returns ``fn`` unchanged; a care
    list whose conjunction is empty returns ``fn`` unchanged (any
    result would be legal; we pick the cheapest).
    """
    manager = fn.bdd
    care_edges = []
    for care in cares:
        manager._check_manager(care)
        if care.edge == 1:  # constant False: empty joint care set
            return fn
        if care.edge != 0:  # drop constant True
            care_edges.append(care.edge)
    if not care_edges:
        return fn
    state = _MultiRestrict(manager)
    result = state.run(fn.edge, tuple(sorted(set(care_edges))))
    if result == _FREE:
        return fn
    return Function(manager, result)


class _MultiRestrict:
    def __init__(self, manager: BDD) -> None:
        self.manager = manager
        self.cache: Dict[Tuple[int, Tuple[int, ...]], int] = {}

    def run(self, f: int, cares: Tuple[int, ...]) -> int:
        # Drop satisfied care constraints; detect dead branches.
        live: List[int] = []
        for care in cares:
            if care == 1:
                return _FREE
            if care != 0:
                live.append(care)
        if not live:
            return f
        if f <= 1:
            return f
        cares = tuple(sorted(set(live)))
        sign = f & 1
        f_reg = f ^ sign
        key = (f_reg, cares)
        cached = self.cache.get(key)
        if cached is None:
            cached = self._recurse(f_reg, cares)
            self.cache[key] = cached
        if cached == _FREE:
            return _FREE
        return cached ^ sign

    def _recurse(self, f: int, cares: Tuple[int, ...]) -> int:
        manager = self.manager
        lf = manager._level[f >> 1]
        lc = min(manager._level[c >> 1] for c in cares)
        if lc < lf:
            # f does not depend on the top care variable: quantify it
            # out of each care BDD independently (sound
            # over-approximation of the joint care set).
            quantified = []
            for care in cares:
                node = care >> 1
                if manager._level[node] == lc:
                    high, low = manager._cofactors(care)
                    quantified.append(manager._or(high, low))
                else:
                    quantified.append(care)
            return self.run(f, tuple(quantified))
        level = lf
        f1, f0 = manager._cofactors(f)
        cares1 = tuple(manager._cofactors_at(c, level)[0] for c in cares)
        cares0 = tuple(manager._cofactors_at(c, level)[1] for c in cares)
        r1 = self.run(f1, cares1)
        r0 = self.run(f0, cares0)
        if r1 == _FREE and r0 == _FREE:
            return _FREE
        if r1 == _FREE:
            return r0
        if r0 == _FREE:
            return r1
        return manager._mk(level, r1, r0)
