"""Flat storage primitives for the array BDD kernel.

Three building blocks, all designed around ``array('q')`` (signed
64-bit) flat storage so the hot loops in :mod:`repro.bdd.kernel` touch
contiguous machine integers instead of tuple-keyed hash maps:

* :class:`NodeStore` — the struct-of-arrays node table: three parallel
  flat arrays (``level``, ``high``, ``low``) indexed by node id.  Node
  0 is the terminal, exactly as in the dict manager; the arrays are
  *the same attributes* (``_level``/``_high``/``_low``) the rest of the
  package already indexes, so every cold-path consumer (sifting, dot
  export, satisfy counts, the tautology checker) works unchanged.

* :class:`UniqueTable` — an open-addressed, linear-probe hash table
  mapping ``(level, high, low)`` to a node id.  The slot vector is a
  flat Python list (CPython specializes list subscripting in its hot
  interpreter loop; ``array('q')`` indexing stays generic and boxes a
  fresh int per read, which measurably hurts the probe-heavy paths).
  Slots store ``node id + 1`` (0 = empty); key words are never copied
  — a probe compares
  against the node store's own arrays, which is both the memory win
  and the reason the table must own references to those arrays.
  Deletion (sifting unlinks dead nodes mid-session) uses backward-shift
  compaction, so the table is **tombstone-free**: probe chains never
  accumulate deleted markers and a rehash only happens to grow.  The
  mapping protocol (``get``/``[]``/``del``/``len``/``items``) keeps the
  inherited cold paths (``_swap_adjacent``, ``_deref``, the resource
  sampler) source-compatible with the dict kernel; the hot paths in
  :mod:`repro.bdd.kernel` probe ``slots`` directly with the same hash.

* :class:`OpCache` — a flat, fixed-width *lossy* computed-op cache (the
  Brace–Rudell–Bryant computed table): one flat word vector of
  ``width``-word slots (key words then the result word), direct-mapped
  by the mixed key hash, colliding entries overwritten.  Losing an
  entry can only cost recomputation, never correctness — results are
  re-derived through the exact unique table — and bounds cache memory
  for long runs, unlike the dict kernel's unbounded memo dicts.  Key
  word 0 doubles as the empty marker because every cached operation
  keys on an edge >= 2 in its first word (constants are handled before
  any probe).

Hash discipline: all three consumers (table methods, kernel hot loops,
resize) must agree on the mix, so the multipliers are module constants
and :func:`mix3` / :func:`mix2` are the only hash functions.

The optional numpy acceleration (bulk edge remapping during garbage
collection) lives in :func:`remap_edges`; without numpy it falls back
to a plain loop — numpy is never required.
"""

from __future__ import annotations

from array import array
from typing import Iterator, Optional, Tuple

try:  # optional: bulk remap acceleration only, never required
    import numpy as _np
except ImportError:  # pragma: no cover - exercised where numpy is absent
    _np = None

__all__ = ["NodeStore", "UniqueTable", "OpCache",
           "MIX_A", "MIX_B", "MIX_C", "mix2", "mix3", "remap_edges"]

#: Odd 32-bit multipliers (Knuth/Murmur-style) shared by every probe
#: site.  Kept below 2**32 so the products of realistic operands stay
#: within two CPython int digits.
MIX_A = 0x9E3779B1
MIX_B = 0x85EBCA77
MIX_C = 0xC2B2AE3D


def mix3(a: int, b: int, c: int) -> int:
    """Mix three non-negative ints; caller masks to table size."""
    return (a * MIX_A) ^ (b * MIX_B) ^ (c * MIX_C)


def mix2(a: int, b: int) -> int:
    """Mix two non-negative ints; caller masks to table size."""
    return (a * MIX_A) ^ (b * MIX_B)


def _zeros(n: int) -> array:
    """A flat array('q') of ``n`` zeros."""
    return array("q", bytes(8 * n))


class NodeStore:
    """Struct-of-arrays node table; row ``i`` is node ``i``.

    A thin owner of the three parallel arrays — the array kernel
    aliases them as ``_level``/``_high``/``_low`` so that every
    existing index-based consumer is oblivious to the storage change.
    """

    __slots__ = ("level", "high", "low")

    def __init__(self, terminal_level: int) -> None:
        self.level = array("q", (terminal_level,))
        self.high = array("q", (0,))
        self.low = array("q", (0,))

    def __len__(self) -> int:
        return len(self.level)

    def extend(self, level_bytes: bytes, high_bytes: bytes,
               low_bytes: bytes) -> None:
        """Bulk-append rows from packed int64 column bytes.

        One C-level ``frombytes`` per column — the amortized-growth
        path the levelized reduce phase uses to materialize a whole
        level of new nodes at once.  The arrays are mutated in place,
        so every alias (the kernel's ``_level``/``_high``/``_low``,
        the unique table's key columns) sees the new rows.
        """
        self.level.frombytes(level_bytes)
        self.high.frombytes(high_bytes)
        self.low.frombytes(low_bytes)


class UniqueTable:
    """Open-addressed linear-probe index over a node store.

    ``slots[i] == 0`` means empty, else ``slots[i] - 1`` is a node id
    whose key is read back from the store arrays.  Grows by rehash at
    2/3 load; shrink only happens wholesale (garbage collection builds
    a fresh table).  Deletions backward-shift the probe chain instead
    of leaving tombstones.
    """

    __slots__ = ("slots", "mask", "used", "limit", "level", "high", "low")

    MIN_SIZE = 1 << 10

    def __init__(self, level: array, high: array, low: array,
                 size: int = MIN_SIZE) -> None:
        if size & (size - 1):
            raise ValueError(f"size must be a power of two, not {size}")
        self.level = level
        self.high = high
        self.low = low
        self.slots = [0] * size
        self.mask = size - 1
        self.used = 0
        self.limit = (size * 2) // 3

    @classmethod
    def sized_for(cls, level: array, high: array, low: array,
                  entries: int) -> "UniqueTable":
        """A table comfortably holding ``entries`` without growing."""
        size = cls.MIN_SIZE
        while (size * 2) // 3 <= entries:
            size <<= 1
        return cls(level, high, low, size=size)

    # -- internal ------------------------------------------------------

    def _home(self, node: int) -> int:
        return ((self.level[node] * MIX_A) ^ (self.high[node] * MIX_B)
                ^ (self.low[node] * MIX_C)) & self.mask

    def _find(self, lvl: int, high: int, low: int) -> Tuple[int, int]:
        """Probe for a key; returns (slot index, node id or -1)."""
        slots = self.slots
        mask = self.mask
        levels = self.level
        highs = self.high
        lows = self.low
        i = ((lvl * MIX_A) ^ (high * MIX_B) ^ (low * MIX_C)) & mask
        while True:
            s = slots[i]
            if s == 0:
                return i, -1
            n = s - 1
            if levels[n] == lvl and highs[n] == high and lows[n] == low:
                return i, n
            i = (i + 1) & mask

    def grow(self) -> None:
        """Double the slot array and rehash every entry (no tombstones
        exist, so this is a straight reinsertion sweep)."""
        old = self.slots
        size = (self.mask + 1) << 1
        slots = [0] * size
        mask = size - 1
        levels = self.level
        highs = self.high
        lows = self.low
        for s in old:
            if s:
                n = s - 1
                i = ((levels[n] * MIX_A) ^ (highs[n] * MIX_B)
                     ^ (lows[n] * MIX_C)) & mask
                while slots[i]:
                    i = (i + 1) & mask
                slots[i] = s
        self.slots = slots
        self.mask = mask
        self.limit = (size * 2) // 3

    def reserve(self, extra: int) -> None:
        """Grow until ``extra`` more inserts cannot trigger a rehash.

        Batch inserters (``ArrayBDD._mk_batch``) claim slots before the
        node rows exist; a mid-batch rehash would invalidate every
        claimed index, so capacity is secured up front.
        """
        while self.used + extra > self.limit:
            self.grow()

    # -- mapping protocol (cold paths: swap, deref, sampler, tests) ----

    def __len__(self) -> int:
        return self.used

    def get(self, key: Tuple[int, int, int],
            default: Optional[int] = None) -> Optional[int]:
        _, node = self._find(*key)
        return default if node < 0 else node

    def __contains__(self, key: Tuple[int, int, int]) -> bool:
        return self._find(*key)[1] >= 0

    def __getitem__(self, key: Tuple[int, int, int]) -> int:
        _, node = self._find(*key)
        if node < 0:
            raise KeyError(key)
        return node

    def __setitem__(self, key: Tuple[int, int, int], node: int) -> None:
        i, found = self._find(*key)
        self.slots[i] = node + 1
        if found < 0:
            self.used += 1
            if self.used > self.limit:
                self.grow()

    def __delitem__(self, key: Tuple[int, int, int]) -> None:
        i, node = self._find(*key)
        if node < 0:
            raise KeyError(key)
        # Backward-shift deletion: close the probe chain instead of
        # dropping a tombstone.  An entry at j may move into the hole
        # at i iff its home slot lies cyclically at or before i.
        slots = self.slots
        mask = self.mask
        self.used -= 1
        j = i
        while True:
            slots[i] = 0
            while True:
                j = (j + 1) & mask
                s = slots[j]
                if s == 0:
                    return
                home = self._home(s - 1)
                if (j - home) & mask >= (j - i) & mask:
                    slots[i] = s
                    i = j
                    break

    def items(self) -> Iterator[Tuple[Tuple[int, int, int], int]]:
        """Iterate ``((level, high, low), node)`` pairs (diagnostics)."""
        levels = self.level
        highs = self.high
        lows = self.low
        for s in self.slots:
            if s:
                n = s - 1
                yield (levels[n], highs[n], lows[n]), n

    def load_factor(self) -> float:
        return self.used / (self.mask + 1)


class OpCache:
    """Flat lossy computed-op cache: ``width`` int64 words per slot.

    The first ``width - 1`` words are the key, the last is the result.
    Direct-mapped: a colliding insert overwrites (lossy, like every
    classic BDD computed table) — so a probe must compare every key
    word, and correctness never depends on an entry surviving.  The
    cache grows (contents dropped — they are only hints, and the loss
    per resize is bounded by one half-load working set) until
    ``max_slots``, bounding both probe cost and memory.  A key's first
    word is never 0 (terminal operands resolve before any cache
    probe), so 0 marks an empty slot.

    Hot paths do not call these methods; they index ``data`` directly
    with the shared :func:`mix2`/:func:`mix3` hash and ``mask``.  The
    methods exist for the cold paths and for
    :meth:`repro.bdd.manager.BDD.clear_caches`'s eviction accounting
    (``len(cache)`` = live entries).
    """

    __slots__ = ("data", "mask", "width", "used", "grow_at", "max_slots",
                 "evictions", "pressure")

    def __init__(self, width: int, slots: int = 1 << 10,
                 max_slots: int = 1 << 20) -> None:
        if width < 2:
            raise ValueError("width must cover one key word and a result")
        if slots & (slots - 1):
            raise ValueError(f"slots must be a power of two, not {slots}")
        self.width = width
        self.data = [0] * (slots * width)
        self.mask = slots - 1
        self.used = 0
        self.max_slots = max_slots
        self.grow_at = self._grow_threshold(slots)
        #: Lifetime count of direct-map collisions that overwrote a
        #: *different* key (same-key refreshes and clear()/grow() drops
        #: are not evictions).  Monotone; surfaced via ``BDD.stats()``.
        self.evictions = 0
        #: Evictions since the last grow()/clear().  Counted toward the
        #: grow trigger alongside ``used``: a thrashing cache overwrites
        #: occupied slots instead of filling empty ones, so ``used``
        #: alone stalls below the threshold and the cache would stay
        #: small forever while the recursion recomputes evicted
        #: subresults exponentially.
        self.pressure = 0

    def _grow_threshold(self, slots: int) -> int:
        # Grow at half load while growth is still allowed; once at the
        # cap, run direct-mapped forever (used can reach slots).
        if slots >= self.max_slots:
            return 1 << 62
        return slots >> 1

    def __len__(self) -> int:
        return self.used

    def clear(self) -> None:
        self.data = [0] * ((self.mask + 1) * self.width)
        self.used = 0
        self.pressure = 0

    def grow(self) -> None:
        """Double capacity, dropping current entries (they are hints).

        Measured head-to-head, rehashing the survivors into the new
        table saves under 1% of misses (each grow forfeits at most one
        half-load working set, repaid once) while paying a full-table
        walk per resize — dropping is the better trade.  Pending slot
        indexes computed under the old mask remain valid offsets into
        the larger array — a stale store lands in a slot the new hash
        may never probe, which only wastes the entry.
        """
        slots = (self.mask + 1) << 1
        if slots > self.max_slots:
            # At the cap: disarm the trigger so eviction pressure does
            # not call back in here on every store.
            self.grow_at = 1 << 62
            return
        self.data = [0] * (slots * self.width)
        self.mask = slots - 1
        self.used = 0
        self.pressure = 0
        self.grow_at = self._grow_threshold(slots)

    # Cold-path probe/store for two-key caches (restrict/constrain use
    # these from tests; kernel loops inline the same sequence).

    def lookup2(self, a: int, b: int) -> Optional[int]:
        i = (mix2(a, b) & self.mask) * self.width
        data = self.data
        if data[i] == a and data[i + 1] == b:
            return data[i + 2]
        return None

    def store2(self, a: int, b: int, result: int) -> None:
        i = (mix2(a, b) & self.mask) * self.width
        data = self.data
        if data[i] == 0:
            self.used += 1
        elif data[i] != a or data[i + 1] != b:
            self.evictions += 1
            self.pressure += 1
        if self.used + self.pressure > self.grow_at:
            self.grow()
            i = (mix2(a, b) & self.mask) * self.width
            data = self.data
            self.used += data[i] == 0
        data[i] = a
        data[i + 1] = b
        data[i + 2] = result

    def lookup3(self, a: int, b: int, c: int) -> Optional[int]:
        i = (mix3(a, b, c) & self.mask) * self.width
        data = self.data
        if data[i] == a and data[i + 1] == b and data[i + 2] == c:
            return data[i + 3]
        return None

    def store3(self, a: int, b: int, c: int, result: int) -> None:
        i = (mix3(a, b, c) & self.mask) * self.width
        data = self.data
        if data[i] == 0:
            self.used += 1
        elif data[i] != a or data[i + 1] != b or data[i + 2] != c:
            self.evictions += 1
            self.pressure += 1
        if self.used + self.pressure > self.grow_at:
            self.grow()
            i = (mix3(a, b, c) & self.mask) * self.width
            data = self.data
            self.used += data[i] == 0
        data[i] = a
        data[i + 1] = b
        data[i + 2] = c
        data[i + 3] = result


def remap_edges(edges: array, remap: array) -> array:
    """Translate every edge through a node-id remap table.

    ``edges[i]`` becomes ``(remap[edges[i] >> 1] << 1) | (edges[i] & 1)``.
    Uses numpy when available (garbage collection of large tables is a
    bulk operation); the fallback is the obvious loop.
    """
    if _np is not None and len(edges) > 512:
        e = _np.frombuffer(edges, dtype=_np.int64)
        r = _np.frombuffer(remap, dtype=_np.int64)
        out = (r[e >> 1] << 1) | (e & 1)
        return array("q", out.tobytes())
    return array("q", ((remap[e >> 1] << 1) | (e & 1) for e in edges))
