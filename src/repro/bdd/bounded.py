"""Size-bounded conjunction — the paper's Section V wish, implemented.

Section V ("Future Research") asks for "the capability to compute the
size of a result without actually building the BDD for that result, and
to abort any of these operations if the size exceeds a specified
bound": when the greedy evaluator builds all pairwise conjunctions, any
product significantly larger than its operands is known-useless before
it is finished.

``bounded_and`` performs the AND recursion but counts the distinct
recursion entries (an upper bound on the nodes the result can
introduce) and aborts, returning ``None``, once the count exceeds the
bound.  The abort is conservative: a completed call always returns the
exact conjunction.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from .manager import BDD, Function

__all__ = ["bounded_and", "BoundedAbort"]


class BoundedAbort(Exception):
    """Internal control-flow signal: the size bound was exceeded."""


def bounded_and(f: Function, g: Function, bound: int) -> Optional[Function]:
    """Conjunction of ``f`` and ``g``, or ``None`` if it grows past ``bound``.

    ``bound`` limits the number of distinct (f, g) subproblems explored,
    which upper-bounds the number of fresh result nodes.
    """
    manager = f.bdd
    manager._check_manager(g)
    manager._bounded_and_calls += 1
    state = _BoundedState(manager, bound)
    try:
        edge = state.run(f.edge, g.edge)
    except BoundedAbort:
        manager._bounded_and_aborts += 1
        return None
    return Function(manager, edge)


class _BoundedState:
    def __init__(self, manager: BDD, bound: int) -> None:
        self.manager = manager
        self.bound = bound
        self.visited = 0
        self.cache: Dict[Tuple[int, int], int] = {}

    def run(self, f: int, g: int) -> int:
        # Edge encoding reminder: 0 is True, 1 is False.
        if f == 1 or g == 1 or f == (g ^ 1):
            return 1
        if f == 0 or f == g:
            return g
        if g == 0:
            return f
        if f > g:
            f, g = g, f
        key = (f, g)
        cached = self.cache.get(key)
        if cached is not None:
            return cached
        self.visited += 1
        if self.visited > self.bound:
            raise BoundedAbort()
        manager = self.manager
        lf = manager._level[f >> 1]
        lg = manager._level[g >> 1]
        top = lf if lf < lg else lg
        f1, f0 = manager._cofactors_at(f, top)
        g1, g0 = manager._cofactors_at(g, top)
        result = manager._mk(top, self.run(f1, g1), self.run(f0, g0))
        self.cache[key] = result
        return result
