"""Node counting helpers — the paper's ``BDDSize`` with sharing.

The key subtlety the paper calls out when motivating its greedy
evaluation heuristic (Figure 1) is that "for efficient BDD
implementations, BDD sizes do not add, since all BDDs in the system can
share nodes with each other".  ``shared_size`` is therefore the right
denominator for the heuristic's ratio, and ``profile`` is what the
tables' "BDD Nodes" column reports for implicit conjunctions:
``total (n1, n2, ...)``.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from .manager import BDD, EpochGuard, Function

__all__ = ["SizeMemo", "shared_size", "individual_sizes", "profile",
           "format_profile"]


class SizeMemo:
    """Per-edge node-count memo, safe across garbage collections.

    ``Function.size()`` walks the whole BDD; the implicit-conjunction
    engines ask for the same sizes over and over (every simplify pass
    compares every conjunct against every peer, every fixpoint
    iteration revisits mostly-unchanged conjuncts).  Since an edge
    determines its function — and therefore its node count — between
    collections, a ``{edge: size}`` dict answers repeats in O(1).

    Follows the gc_epoch contract (see :mod:`repro.bdd.manager`): the
    memo flushes itself whenever the manager renumbers edges, so a
    stale entry can never be served.  Capacity-bounded; overflowing
    drops the whole table (sizes are cheap to recompute relative to
    tracking recency).
    """

    __slots__ = ("manager", "capacity", "hits", "misses", "flushes",
                 "_guard", "_sizes")

    def __init__(self, manager: BDD, capacity: int = 1 << 18) -> None:
        self.manager = manager
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self.flushes = 0
        self._guard = EpochGuard(manager)
        self._sizes: Dict[int, int] = {}

    def __len__(self) -> int:
        return len(self._sizes)

    def check_epoch(self) -> None:
        """Flush if the manager renumbered edges since the last call."""
        if self._guard.refresh():
            self._sizes.clear()
            self.flushes += 1

    def size(self, fn: Function) -> int:
        """Memoized ``fn.size()``."""
        self.check_epoch()
        edge = fn.edge
        cached = self._sizes.get(edge)
        if cached is not None:
            self.hits += 1
            return cached
        self.misses += 1
        result = fn.size()
        if len(self._sizes) >= self.capacity:
            self._sizes.clear()
            self.flushes += 1
        self._sizes[edge] = result
        return result

    def stats(self) -> Dict[str, int]:
        """Counters for reporting: hits, misses, flushes, entries."""
        return {"hits": self.hits, "misses": self.misses,
                "flushes": self.flushes, "entries": len(self._sizes)}


def shared_size(functions: Sequence[Function]) -> int:
    """Distinct node count over all roots, sharing counted once."""
    if not functions:
        return 0
    manager = functions[0].bdd
    return manager.count_nodes(functions)


def individual_sizes(functions: Sequence[Function]) -> List[int]:
    """Per-function node counts (each including the terminal)."""
    return [fn.size() for fn in functions]


def profile(functions: Sequence[Function]) -> Tuple[int, List[int]]:
    """Return ``(shared_total, sorted per-BDD sizes)`` for a list."""
    return shared_size(functions), sorted(individual_sizes(functions))


def format_profile(functions: Sequence[Function]) -> str:
    """Format like the paper's tables, e.g. ``638 (81, 169, 390)``.

    When all conjuncts have the same size the paper abbreviates to
    ``(i x j nodes)``; we do the same.
    """
    total, sizes = profile(functions)
    if not sizes:
        return "0"
    if len(sizes) == 1:
        return str(total)
    if len(set(sizes)) == 1:
        return f"{total} ({len(sizes)} x {sizes[0]} nodes)"
    return f"{total} ({', '.join(str(s) for s in sizes)})"
