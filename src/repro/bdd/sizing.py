"""Node counting helpers — the paper's ``BDDSize`` with sharing.

The key subtlety the paper calls out when motivating its greedy
evaluation heuristic (Figure 1) is that "for efficient BDD
implementations, BDD sizes do not add, since all BDDs in the system can
share nodes with each other".  ``shared_size`` is therefore the right
denominator for the heuristic's ratio, and ``profile`` is what the
tables' "BDD Nodes" column reports for implicit conjunctions:
``total (n1, n2, ...)``.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from .manager import Function

__all__ = ["shared_size", "individual_sizes", "profile", "format_profile"]


def shared_size(functions: Sequence[Function]) -> int:
    """Distinct node count over all roots, sharing counted once."""
    if not functions:
        return 0
    manager = functions[0].bdd
    return manager.count_nodes(functions)


def individual_sizes(functions: Sequence[Function]) -> List[int]:
    """Per-function node counts (each including the terminal)."""
    return [fn.size() for fn in functions]


def profile(functions: Sequence[Function]) -> Tuple[int, List[int]]:
    """Return ``(shared_total, sorted per-BDD sizes)`` for a list."""
    return shared_size(functions), sorted(individual_sizes(functions))


def format_profile(functions: Sequence[Function]) -> str:
    """Format like the paper's tables, e.g. ``638 (81, 169, 390)``.

    When all conjuncts have the same size the paper abbreviates to
    ``(i x j nodes)``; we do the same.
    """
    total, sizes = profile(functions)
    if not sizes:
        return "0"
    if len(sizes) == 1:
        return str(total)
    if len(set(sizes)) == 1:
        return f"{total} ({len(sizes)} x {sizes[0]} nodes)"
    return f"{total} ({', '.join(str(s) for s in sizes)})"
