"""Graphviz DOT export for debugging and documentation figures."""

from __future__ import annotations

from typing import List, Sequence

from .manager import Function

__all__ = ["to_dot"]


def to_dot(functions: Sequence[Function],
           labels: Sequence[str] = ()) -> str:
    """Render one or more BDDs (with shared nodes) as a DOT digraph.

    Complemented edges are drawn dotted; low edges dashed.  Roots get
    labelled entry arrows.
    """
    if not functions:
        return "digraph bdd {\n}\n"
    manager = functions[0].bdd
    lines: List[str] = ["digraph bdd {", '  rankdir="TB";']
    seen = set()
    stack = [fn.edge >> 1 for fn in functions]
    while stack:
        node = stack.pop()
        if node in seen:
            continue
        seen.add(node)
        if node == 0:
            lines.append('  n0 [shape=box, label="1"];')
            continue
        level = manager._level[node]
        name = manager._var_names[level]
        lines.append(f'  n{node} [shape=circle, label="{name}"];')
        for edge, style in ((manager._high[node], "solid"),
                            (manager._low[node], "dashed")):
            child = edge >> 1
            extra = ", arrowhead=odot" if edge & 1 else ""
            lines.append(
                f'  n{node} -> n{child} [style={style}{extra}];')
            stack.append(child)
    for index, fn in enumerate(functions):
        label = labels[index] if index < len(labels) else f"f{index}"
        root = fn.edge >> 1
        extra = " arrowhead=odot," if fn.edge & 1 else ""
        lines.append(f'  r{index} [shape=plaintext, label="{label}"];')
        lines.append(f'  r{index} -> n{root} [{extra.strip(",")}];'
                     if extra else f'  r{index} -> n{root};')
    lines.append("}")
    return "\n".join(lines) + "\n"
