"""Variable-ordering helpers.

The paper's examples rely on the standard datapath heuristic of
*interleaving bitslices* (Jeong et al. [19]): bit k of every word is
declared before bit k+1 of any word, so related bits sit next to each
other in the order.  These helpers compute declaration orders; actual
declaration happens in the FSM builder, because order is fixed at
variable creation time in our manager (no dynamic reordering — the
paper does not reorder either).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

__all__ = ["interleaved", "blocked"]

#: A vector spec: (base name, bit width).
VectorSpec = Tuple[str, int]


def bit_name(base: str, index: int) -> str:
    """Canonical name of one bit of a vector."""
    return f"{base}[{index}]"


def interleaved(specs: Sequence[VectorSpec]) -> List[str]:
    """Bit-sliced (interleaved) declaration order for several vectors.

    ``interleaved([("a", 2), ("b", 2)])`` yields
    ``a[0] b[0] a[1] b[1]`` — bit k of every vector before bit k+1.
    Vectors of unequal width simply drop out of slices they don't have.
    """
    if not specs:
        return []
    max_width = max(width for _, width in specs)
    names = []
    for bit in range(max_width):
        for base, width in specs:
            if bit < width:
                names.append(bit_name(base, bit))
    return names


def blocked(specs: Sequence[VectorSpec]) -> List[str]:
    """Vector-at-a-time (non-interleaved) declaration order."""
    names = []
    for base, width in specs:
        for bit in range(width):
            names.append(bit_name(base, bit))
    return names
