"""Reduced ordered BDDs with complement edges.

This is the substrate the paper assumes: an "efficient BDD
implementation (where negation is constant-time)" in the style of
Brace, Rudell, and Bryant (DAC 1990).  Nodes live in a unique table so
that every Boolean function has exactly one representation, and edges
carry a complement bit so negation never allocates.

Edges are plain integers: ``edge = (node_index << 1) | complement``.
Node 0 is the single terminal (the constant True); the edge ``0`` is
True and the edge ``1`` is its complement, False.  Canonicity requires
that the *then* (high) edge of every stored node is regular
(non-complemented); :meth:`BDD._mk` restores this invariant by
complementing both children and the resulting edge when needed.

The public, user-facing API is the :class:`Function` wrapper; internal
algorithms work on raw integer edges (methods prefixed ``_``) to keep
the hot paths allocation-free.

**The gc_epoch contract for external edge-keyed caches.**  Raw integer
edges are only stable between structural events: every
:meth:`BDD.garbage_collect` and :meth:`BDD.reorder` renumbers nodes, so
any cache outside the manager that keys on edges (or stores edges as
values) holds garbage afterwards.  The manager advertises these events
by incrementing :attr:`BDD.gc_epoch`.  An external cache must therefore
record the epoch at which it was filled and flush itself whenever the
manager's epoch differs — never serve an entry recorded under an older
epoch.  :class:`EpochGuard` packages the discipline; the tautology
memo, the size memo (:class:`repro.bdd.sizing.SizeMemo`) and the pair
cache (:class:`repro.iclist.paircache.PairCache`) all use it.

Cumulative operation statistics (cache hits/misses, node allocations,
bounded-AND aborts, ...) survive :meth:`BDD.clear_caches` and
:meth:`BDD.garbage_collect` — flushing a memo table never resets the
counters — and are reported by :meth:`BDD.stats`.
"""

from __future__ import annotations

import sys
import time
import weakref
from typing import Callable, Dict, Iterable, List, Optional, Sequence, \
    Tuple

from ..obs.registry import NULL_REGISTRY
from ..obs.spans import NULL_SPANS

__all__ = ["BDD", "EpochGuard", "Function", "BudgetExceededError",
           "TERMINAL_LEVEL"]

#: Pseudo-level of the terminal node; larger than any variable level.
TERMINAL_LEVEL = 1 << 60

_RECURSION_HEADROOM = 200_000

# Deep BDDs recurse once per variable level; raise the interpreter limit
# once, at import time.
if sys.getrecursionlimit() < _RECURSION_HEADROOM:
    sys.setrecursionlimit(_RECURSION_HEADROOM)


class BudgetExceededError(Exception):
    """Raised when a node or wall-clock budget set on the manager is hit.

    The paper reports intractable runs as "Exceeded 60MB" or "Exceeded
    40 minutes"; engines reproduce those rows by catching this error.
    """

    def __init__(self, kind: str, limit: float) -> None:
        super().__init__(f"{kind} budget exceeded (limit: {limit})")
        self.kind = kind
        self.limit = limit


class BDD:
    """A BDD manager: variable order, unique table, and operation caches.

    Variables are created with :meth:`new_var` and are ordered by
    creation.  The order is not fixed forever: :meth:`swap_levels`
    exchanges two adjacent levels in place (node ids — and therefore
    live :class:`Function` handles — are untouched), :meth:`sift` runs
    Rudell sifting on top of it, and :meth:`reorder` rebuilds the whole
    manager under an arbitrary permutation.

    Two interchangeable kernels implement this class.  This one — the
    *dict* kernel — stores nodes in Python lists and memo tables in
    tuple-keyed dicts and recurses in Python; it is the readable
    reference and the differential-testing oracle.  The *array* kernel
    (:class:`repro.bdd.kernel.ArrayBDD`) keeps the same facade on flat
    ``array('q')`` storage with iterative operations and is
    edge-identical but several times faster.  ``BDD(kernel=...)``
    selects one explicitly; a bare ``BDD()`` builds whatever
    :func:`repro.bdd.kernel.kernel_context` has made the default
    (initially ``"dict"``).
    """

    #: Kernel name reported by this class; the array kernel overrides.
    kernel = "dict"

    def __new__(cls, max_nodes: Optional[int] = None,
                time_limit: Optional[float] = None,
                kernel: Optional[str] = None) -> "BDD":
        # Kernel dispatch happens here, not in a factory, so that every
        # existing construction site — fsm builders, reorder shadows,
        # transfer targets, tests — transparently builds the selected
        # kernel.  Subclass constructors bypass the dispatch.
        if cls is BDD:
            from .kernel import ArrayBDD, resolve_kernel
            if resolve_kernel(kernel) == "array":
                return super().__new__(ArrayBDD)
        return super().__new__(cls)

    def __init__(self, max_nodes: Optional[int] = None,
                 time_limit: Optional[float] = None,
                 kernel: Optional[str] = None) -> None:
        # ``kernel`` is consumed by __new__; accepted here so the
        # signatures agree.
        # Parallel arrays indexed by node id.  Node 0 is the terminal.
        self._level: List[int] = [TERMINAL_LEVEL]
        self._high: List[int] = [0]
        self._low: List[int] = [0]
        self._unique: Dict[Tuple[int, int, int], int] = {}
        # Node ids at each level (dead nodes included until the next
        # collection, exactly like the unique table).  Maintained
        # incrementally by _mk_raw/swap/GC so per-level sizes — the
        # quantity sifting optimizes — are O(1) to read.
        self._level_members: List[List[int]] = []
        self._var_names: List[str] = []
        self._name_to_level: Dict[str, int] = {}
        # Operation caches.
        self._ite_cache: Dict[Tuple[int, int, int], int] = {}
        self._quant_cache: Dict[Tuple[int, int, int], int] = {}
        self._andex_cache: Dict[Tuple[int, int, int, int], int] = {}
        self._restrict_cache: Dict[Tuple[int, int], int] = {}
        self._constrain_cache: Dict[Tuple[int, int], int] = {}
        self._compose_caches: Dict[int, Dict[int, int]] = {}
        self._compose_key = 0
        self._levelset_ids: Dict[frozenset, int] = {}
        # Live Function handles, for garbage collection roots.  Keyed by
        # object identity: Function equality is *value* equality, so a
        # WeakSet would silently drop the second handle wrapping the
        # same edge — and garbage collection must remap every handle.
        self._functions: Dict[int, "weakref.ref[Function]"] = {}
        #: Bumped by every garbage_collect(); external edge-keyed caches
        #: (e.g. the tautology memo) must flush when it changes.
        self.gc_epoch = 0
        self._gc_trigger: Optional[int] = None
        #: When set (engines do this for the duration of a run),
        #: :meth:`auto_collect` becomes active at library safe points.
        self.auto_gc_min_nodes: Optional[int] = None
        #: When set (engines arm this via ``Options(reorder="auto")``),
        #: :meth:`auto_collect` also runs :meth:`maybe_sift`: a sift
        #: fires once live nodes grow by this factor since the last
        #: sift (the classic dynamic-reordering trigger).
        self.auto_sift_trigger: Optional[float] = None
        #: Live-node floor below which :meth:`maybe_sift` never fires —
        #: sifting a near-empty table cannot pay for itself.
        self.auto_sift_min_live: int = 256
        self._auto_sift_baseline: Optional[int] = None
        #: Optional observer called with one summary dict after every
        #: :meth:`sift` session (even an aborted one).  Purely
        #: observational — the structured-tracing layer uses it to emit
        #: ``reorder`` events and engines collect per-run sift totals.
        self.reorder_observer = None
        self._in_reorder = False
        # Session-local reference counts, installed by sift() so swaps
        # can unlink nodes the moment they die (this manager has no
        # permanent refcounts; without these, swap garbage would make
        # per-level sizes monotone and sifting blind).  None outside a
        # sifting session.
        self._sift_refs: Optional[List[int]] = None
        #: Observers called as ``observer(freed, live, epoch)`` after
        #: every :meth:`garbage_collect`.  Purely observational — the
        #: structured-tracing layer emits ``gc`` events from one, the
        #: resource sampler snapshots from another.  Register with
        #: :meth:`add_gc_observer` / :meth:`remove_gc_observer`.  (The
        #: deprecated single-slot ``gc_observer`` attribute shim was
        #: removed after one deprecation cycle; see docs/API.md.)
        self._gc_observers: List[Callable[[int, int, int], None]] = []
        #: Metrics sink for the op-level histograms.  Always a registry
        #: object; the default :data:`~repro.obs.registry.NULL_REGISTRY`
        #: has ``enabled = False``, so every hot-path emit reduces to
        #: one attribute check.
        self.metrics = NULL_REGISTRY
        #: A :class:`~repro.obs.sampler.ResourceSampler` while one is
        #: installed — :meth:`auto_collect` gives it the same safe
        #: points it gives the collector and sifter.
        self.resource_sampler = None
        #: Span sink for the leaf-operation attribution (apply /
        #: restrict / constrain / relprod).  Always a sink object; the
        #: default :data:`~repro.obs.spans.NULL_SPANS` has
        #: ``enabled = False``, so every site is one attribute check.
        self.spans = NULL_SPANS
        #: A :class:`~repro.obs.watchdog.Watchdog` while one is armed —
        #: :meth:`auto_collect` stamps its liveness so the heartbeat
        #: can tell "long operation" from "stuck".
        self.heartbeat = None
        # Budgets.
        self.max_nodes = max_nodes
        self._deadline = (time.monotonic() + time_limit
                          if time_limit is not None else None)
        self._time_check_countdown = 4096
        self._peak_nodes = 1
        # Cumulative operation statistics.  Plain int attributes (not a
        # dict) to keep the per-call overhead in the hot recursions to a
        # single attribute increment; assembled into a dict by stats().
        # These survive clear_caches()/garbage_collect() by design.
        self._ite_hits = 0
        self._ite_misses = 0
        self._quant_hits = 0
        self._quant_misses = 0
        self._andex_hits = 0
        self._andex_misses = 0
        self._restrict_hits = 0
        self._restrict_misses = 0
        self._constrain_hits = 0
        self._constrain_misses = 0
        self._cache_evictions = 0
        self._cache_flushes = 0
        self._nodes_created = 1  # the terminal
        self._gc_runs = 0
        self._gc_freed = 0
        self._bounded_and_calls = 0
        self._bounded_and_aborts = 0
        self._reorder_runs = 0
        self._reorder_swaps = 0
        self._reorder_time_ms = 0
        self._reorder_nodes_before = 0
        self._reorder_nodes_after = 0
        self._levelized_calls = 0
        self._levelized_requests = 0
        # High-water mark of the per-level request-queue width inside
        # one levelized breadth-first sweep — the figure that sizes
        # disk-backed level queues for the out-of-core path.  Lives on
        # the base class (zero under recursive apply) so both kernels
        # expose an identical stats() shape.
        self._levelized_peak_width = 0
        #: Apply-path selection (``recursive`` | ``levelized`` |
        #: ``auto``).  Only the array kernel dispatches on it — the
        #: dict manager has no levelized engine and the attribute is
        #: inert here — but it lives on the base class so
        #: ``Options(apply=...)`` can arm any manager uniformly.
        self.apply_mode = "recursive"
        #: ``auto`` mode's switch point: recursive cache misses (live
        #: requests) before an operation restarts levelized.
        from .levelized import DEFAULT_AUTO_THRESHOLD
        self.apply_threshold = DEFAULT_AUTO_THRESHOLD

    # ------------------------------------------------------------------
    # Constants and variables
    # ------------------------------------------------------------------

    @property
    def true(self) -> "Function":
        """The constant True function."""
        return Function(self, 0)

    @property
    def false(self) -> "Function":
        """The constant False function."""
        return Function(self, 1)

    def new_var(self, name: str) -> "Function":
        """Create a fresh variable at the bottom of the current order."""
        if name in self._name_to_level:
            raise ValueError(f"variable {name!r} already exists")
        level = len(self._var_names)
        self._var_names.append(name)
        self._name_to_level[name] = level
        self._level_members.append([])
        return Function(self, self._mk(level, 0, 1))

    def var(self, name: str) -> "Function":
        """Return the function for an existing variable by name."""
        level = self._name_to_level[name]
        return Function(self, self._var_edge(level))

    def var_at_level(self, level: int) -> "Function":
        """Return the variable function for a given level."""
        if not 0 <= level < len(self._var_names):
            raise IndexError(f"no variable at level {level}")
        return Function(self, self._var_edge(level))

    def level_of(self, name: str) -> int:
        """Return the order position (level) of a named variable."""
        return self._name_to_level[name]

    def name_of_level(self, level: int) -> str:
        """Return the variable name at a given level."""
        return self._var_names[level]

    @property
    def var_names(self) -> Tuple[str, ...]:
        """All variable names in order."""
        return tuple(self._var_names)

    @property
    def num_vars(self) -> int:
        """Number of variables declared so far."""
        return len(self._var_names)

    @property
    def num_nodes_allocated(self) -> int:
        """Current node-table size (shrinks at garbage collection)."""
        return len(self._level)

    @property
    def peak_nodes(self) -> int:
        """High-water mark of the node table (our memory proxy)."""
        return self._peak_nodes

    def estimated_memory_bytes(self) -> int:
        """Rough memory estimate: peak table size times a per-node cost.

        The paper itself warns that total memory "is highly sensitive to
        details of the BDD implementation"; this figure exists only so
        the benchmark tables have a Mem column with the right *shape*.
        """
        return self.peak_nodes * 40

    def clear_caches(self) -> None:
        """Drop all operation caches (unique table is kept).

        Cumulative statistics counters are *preserved*: the dropped
        memo entries are tallied as evictions and the flush itself is
        counted, but hit/miss/allocation history is never reset (see
        the gc_epoch contract in the module docstring).
        """
        self._cache_evictions += (
            len(self._ite_cache) + len(self._quant_cache)
            + len(self._andex_cache) + len(self._restrict_cache)
            + len(self._constrain_cache)
            + sum(len(cache) for cache in self._compose_caches.values()))
        self._cache_flushes += 1
        self._ite_cache.clear()
        self._quant_cache.clear()
        self._andex_cache.clear()
        self._restrict_cache.clear()
        self._constrain_cache.clear()
        self._compose_caches.clear()

    def _opcache_evictions(self) -> int:
        """Direct-map collision evictions (array kernel only; the dict
        kernel's unbounded memo dicts never evict)."""
        return 0

    def stats(self) -> Dict[str, int]:
        """Snapshot of the manager-wide operation statistics.

        Returns a flat ``{counter: value}`` dict.  All entries except
        the gauges ``nodes_current`` and ``nodes_peak`` are monotone
        counters that survive :meth:`clear_caches` and
        :meth:`garbage_collect`; use :meth:`stats_delta` to report the
        cost of one region of work.
        """
        return {
            "ite_hits": self._ite_hits,
            "ite_misses": self._ite_misses,
            "quantify_hits": self._quant_hits,
            "quantify_misses": self._quant_misses,
            "and_exists_hits": self._andex_hits,
            "and_exists_misses": self._andex_misses,
            "restrict_hits": self._restrict_hits,
            "restrict_misses": self._restrict_misses,
            "constrain_hits": self._constrain_hits,
            "constrain_misses": self._constrain_misses,
            "cache_evictions": self._cache_evictions,
            "cache_flushes": self._cache_flushes,
            "opcache_evictions": self._opcache_evictions(),
            "levelized_calls": self._levelized_calls,
            "levelized_requests": self._levelized_requests,
            "levelized_peak_width": self._levelized_peak_width,
            "nodes_created": self._nodes_created,
            "nodes_current": len(self._level),
            "nodes_peak": self._peak_nodes,
            "gc_runs": self._gc_runs,
            "gc_freed": self._gc_freed,
            "bounded_and_calls": self._bounded_and_calls,
            "bounded_and_aborts": self._bounded_and_aborts,
            "reorder_runs": self._reorder_runs,
            "reorder_swaps": self._reorder_swaps,
            "reorder_time_ms": self._reorder_time_ms,
            "reorder_nodes_before": self._reorder_nodes_before,
            "reorder_nodes_after": self._reorder_nodes_after,
        }

    #: stats() keys that are point-in-time gauges, not monotone counters.
    #: ``levelized_peak_width`` is a high-water mark like ``nodes_peak``:
    #: deltas would be meaningless, so it reports its current value.
    STAT_GAUGES = frozenset({"nodes_current", "nodes_peak",
                             "levelized_peak_width"})

    @classmethod
    def stats_delta(cls, before: Dict[str, int],
                    after: Dict[str, int]) -> Dict[str, int]:
        """Difference of two :meth:`stats` snapshots.

        Counters are subtracted; gauges keep their ``after`` value.
        """
        return {key: (value if key in cls.STAT_GAUGES
                      else value - before.get(key, 0))
                for key, value in after.items()}

    # ------------------------------------------------------------------
    # Garbage collection
    # ------------------------------------------------------------------

    def _register(self, fn: "Function") -> None:
        key = id(fn)
        registry = self._functions

        def _drop(_ref, registry=registry, key=key):
            registry.pop(key, None)

        registry[key] = weakref.ref(fn, _drop)

    def _live_functions(self) -> List["Function"]:
        handles = []
        for ref in list(self._functions.values()):
            fn = ref()
            if fn is not None:
                handles.append(fn)
        return handles

    def num_live_nodes(self) -> int:
        """Nodes reachable from live :class:`Function` handles."""
        return self._count_nodes(
            [fn.edge for fn in self._live_functions()])

    def add_gc_observer(
            self, observer: Callable[[int, int, int], None]) -> None:
        """Register ``observer(freed, live, epoch)`` on the GC fan-out.

        Observers fire in registration order after every
        :meth:`garbage_collect`; registering the same callable twice
        fires it twice.  Purely observational — observers must not
        mutate the manager.
        """
        self._gc_observers.append(observer)

    def remove_gc_observer(
            self, observer: Callable[[int, int, int], None]) -> None:
        """Remove one registration of ``observer`` (no-op if absent)."""
        try:
            self._gc_observers.remove(observer)
        except ValueError:
            return

    def garbage_collect(self) -> int:
        """Mark-compact collection; returns the number of nodes freed.

        Dead nodes accumulate because the unique table is append-only
        between collections — after enough fixpoint iterations the
        garbage dwarfs the live structure (the paper's "vagaries of
        garbage collection" are real).  Roots are the live
        :class:`Function` handles; raw integer edges held anywhere else
        become stale, so this must only be called between operations
        (engines call it between iterations).  External caches keyed by
        edges must flush when :attr:`gc_epoch` changes.
        """
        if len(self._compose_caches) > 0:
            raise RuntimeError("garbage_collect during vector compose")
        handles = self._live_functions()
        marked = self._mark_live(handles)
        before = len(self._level)
        remap = self._compact(marked, before)
        for fn in handles:
            fn.edge = self._remap_edge(fn.edge, remap)
        self.clear_caches()
        self.gc_epoch += 1
        self._gc_runs += 1
        freed = before - len(self._level)
        self._gc_freed += freed
        if self._gc_observers:
            for observer in list(self._gc_observers):
                observer(freed, len(self._level), self.gc_epoch)
        return freed

    def _mark_live(self, handles: Sequence["Function"]) -> bytearray:
        """Mark every node reachable from the live handles.

        The mark half of :meth:`garbage_collect`; the array kernel
        overrides it with a vectorized frontier sweep.
        """
        marked = bytearray(len(self._level))
        marked[0] = 1
        stack = [fn.edge >> 1 for fn in handles]
        while stack:
            node = stack.pop()
            if marked[node]:
                continue
            marked[node] = 1
            stack.append(self._high[node] >> 1)
            stack.append(self._low[node] >> 1)
        return marked

    def _compact(self, marked: bytearray, before: int) -> Sequence[int]:
        """Rebuild the node storage keeping only marked nodes.

        The storage-specific half of :meth:`garbage_collect` — the
        array kernel overrides it with an array-native (optionally
        vectorized) version.  Returns the old-id -> new-id remap table;
        the caller translates live handles and handles the epoch/cache
        bookkeeping.
        """
        remap: List[int] = [0] * before
        # Two passes: swap_levels rewrites parents in place, so children
        # no longer always precede parents in id order — every remapped
        # id must exist before any edge is translated.
        survivors: List[int] = []
        for node in range(before):
            if marked[node]:
                remap[node] = len(survivors)
                survivors.append(node)
        new_level: List[int] = []
        new_high: List[int] = []
        new_low: List[int] = []
        for node in survivors:
            new_level.append(self._level[node])
            new_high.append(self._remap_edge(self._high[node], remap)
                            if node else 0)
            new_low.append(self._remap_edge(self._low[node], remap)
                           if node else 0)
        self._level = new_level
        self._high = new_high
        self._low = new_low
        self._unique = {
            (self._level[node], self._high[node], self._low[node]): node
            for node in range(1, len(self._level))}
        members: List[List[int]] = [[] for _ in self._var_names]
        for node in range(1, len(self._level)):
            members[self._level[node]].append(node)
        self._level_members = members
        return remap

    @staticmethod
    def _remap_edge(edge: int, remap: Sequence[int]) -> int:
        return (remap[edge >> 1] << 1) | (edge & 1)

    def maybe_collect(self, min_nodes: int = 200_000,
                      garbage_ratio: float = 1.0) -> bool:
        """Collect when the table has grown enough to plausibly pay off.

        Uses a cheap trigger (table size doubled since the last
        collection, once past ``min_nodes``) rather than counting live
        nodes on every call.
        """
        allocated = len(self._level)
        if allocated < min_nodes:
            return False
        if self._gc_trigger is not None and allocated < self._gc_trigger:
            return False
        freed = self.garbage_collect()
        live = len(self._level)
        self._gc_trigger = max(min_nodes,
                               int(live * (1.0 + garbage_ratio)))
        return freed > 0

    def reorder(self, new_order: Sequence[str]) -> int:
        """Rebuild the whole manager under a new variable order.

        ``new_order`` must be a permutation of the existing variable
        names.  Every live :class:`Function` handle is rebuilt (its
        denotation is preserved; its edge — and hash — changes), all
        caches are flushed, and :attr:`gc_epoch` is bumped so external
        edge-keyed caches flush too.  Returns the node-table size after
        the rebuild.

        Like :meth:`garbage_collect`, this must only be called between
        operations: raw integer edges held anywhere become stale.
        """
        if sorted(new_order) != sorted(self._var_names):
            raise ValueError(
                "new_order must be a permutation of the existing "
                "variable names")
        if len(self._compose_caches) > 0:
            raise RuntimeError("reorder during vector compose")
        # Same class as self: the shadow's storage is adopted wholesale
        # below, so a dict manager must rebuild on dict storage and an
        # array manager on array storage, whatever the current default
        # kernel is.
        shadow = type(self)(kernel=self.kernel)
        for name in new_order:
            shadow.new_var(name)
        handles = self._live_functions()
        cache: Dict[int, int] = {0: 0}

        def rebuild(edge: int) -> int:
            node = edge >> 1
            sign = edge & 1
            done = cache.get(node)
            if done is None:
                high = rebuild(self._high[node])
                low = rebuild(self._low[node])
                var = shadow._var_edge(
                    shadow._name_to_level[self._var_names[
                        self._level[node]]])
                done = shadow._ite(var, high, low)
                cache[node] = done
            return done ^ sign

        new_edges = [rebuild(fn.edge) for fn in handles]
        self._level = shadow._level
        self._high = shadow._high
        self._low = shadow._low
        self._unique = shadow._unique
        self._level_members = shadow._level_members
        self._var_names = list(new_order)
        self._name_to_level = dict(shadow._name_to_level)
        for fn, edge in zip(handles, new_edges):
            fn.edge = edge
        self.clear_caches()
        self._levelset_ids.clear()
        self.gc_epoch += 1
        if len(self._level) > self._peak_nodes:
            self._peak_nodes = len(self._level)
        return len(self._level)

    def auto_collect(self) -> None:
        """Collection hook for library safe points.

        No-op unless an engine armed it by setting
        :attr:`auto_gc_min_nodes`.  Callers must hold no raw integer
        edges across this call — only :class:`Function` handles, which
        are remapped.
        """
        if self.auto_gc_min_nodes is not None:
            self.maybe_collect(min_nodes=self.auto_gc_min_nodes)
        if self.auto_sift_trigger is not None:
            self.maybe_sift()
        if self.resource_sampler is not None:
            self.resource_sampler.maybe_sample()
        if self.heartbeat is not None:
            self.heartbeat.touch()

    # ------------------------------------------------------------------
    # In-place dynamic reordering: adjacent-level swap and sifting
    # ------------------------------------------------------------------

    def level_sizes(self) -> List[int]:
        """Allocated node count per level (dead nodes included).

        This is the quantity sifting minimizes.  Counting only *live*
        nodes would need a reachability sweep per measurement; the
        allocated count is O(1) per level and converges to the live
        count at every garbage collection.
        """
        return [len(members) for members in self._level_members]

    def swap_levels(self, i: int) -> int:
        """Exchange variable levels ``i`` and ``i+1`` in place.

        Only nodes at the two levels are relinked; every node keeps its
        id, so live :class:`Function` handles are untouched and keep
        denoting the same functions.  Level-keyed state does go stale,
        so the op caches are flushed and :attr:`gc_epoch` is bumped —
        :meth:`sift` batches many swaps and pays that once per session.
        Returns the change in the allocated size of the two levels.
        """
        if not 0 <= i < len(self._var_names) - 1:
            raise IndexError(f"no adjacent level pair at {i}")
        if len(self._compose_caches) > 0:
            raise RuntimeError("swap_levels during vector compose")
        delta = self._swap_adjacent(i)
        self._flush_after_reorder()
        self._check_budgets()
        return delta

    def _swap_adjacent(self, i: int) -> int:
        """Swap levels ``i`` and ``i+1``; caches are NOT flushed.

        The classic in-place swap (Rudell, ICCAD 1993).  With x at
        level i and y at level i+1, a level-i node f = x?H:L falls into
        one of two classes:

        * *independent* — neither child is at level i+1, so f does not
          depend on y; it keeps its children and just takes x's new
          position (level i+1);
        * *interacting* — f is rewritten in place as a level-i root of
          the *same function* under the new order, y ? (x?f11:f01)
          : (x?f10:f00), where fab are the grandchild cofactors.  Its
          id is preserved, so parents above need no adjustment.

        Old level-(i+1) nodes move up to level i unchanged (their
        children are strictly deeper than both levels).  No unique-key
        collisions are possible: prior canonicity means distinct nodes
        denote distinct functions, and a rewritten node always keeps at
        least one child at level i+1 while a moved-up y node has none.
        The stored-high-regular invariant is preserved because f11 is a
        cofactor of a regular edge.  Budgets are deliberately ignored
        here — a half-finished swap must never be observable — and are
        re-checked by the caller at the swap boundary.
        """
        j = i + 1
        levels = self._level
        highs = self._high
        lows = self._low
        unique = self._unique
        members = self._level_members
        refs = self._sift_refs
        xs = members[i]
        ys = members[j]
        before = len(xs) + len(ys)
        # Pass 1: classify level-i nodes, capturing grandchild cofactors
        # before any relabelling mutates the arrays.
        independent: List[int] = []
        interacting: List[Tuple[int, int, int, int, int, int, int]] = []
        for n in xs:
            h = highs[n]  # regular, by the canonical form
            l = lows[n]
            hn = h >> 1
            ln = l >> 1
            h_at_j = levels[hn] == j
            l_at_j = levels[ln] == j
            if not h_at_j and not l_at_j:
                independent.append(n)
                continue
            if h_at_j:
                f11, f10 = highs[hn], lows[hn]
            else:
                f11 = f10 = h
            if l_at_j:
                sign = l & 1
                f01, f00 = highs[ln] ^ sign, lows[ln] ^ sign
            else:
                f01 = f00 = l
            interacting.append((n, f11, f10, f01, f00, h, l))
        # Pass 2: every key at the two levels is about to change.
        for n in xs:
            del unique[(i, highs[n], lows[n])]
        for n in ys:
            del unique[(j, highs[n], lows[n])]
        # Pass 3: old level-(i+1) nodes move up to level i unchanged.
        for n in ys:
            levels[n] = i
            unique[(i, highs[n], lows[n])] = n
        members[i] = list(ys)
        # Pass 4: independent nodes take x's new position, children kept.
        # (Must precede pass 5 so its _mk calls can share them, and so
        # fresh level-j allocations land in the new members list.)
        for n in independent:
            levels[n] = j
            unique[(j, highs[n], lows[n])] = n
        members[j] = independent
        # Pass 5: rewrite interacting nodes in place.  Budgets off for
        # atomicity; the public callers re-check at the boundary.
        # Under a sifting session (refs is not None) the reference
        # counts are kept exact: fresh nodes charge their children, the
        # rewritten node charges its new children and releases its old
        # ones, and anything that drops to zero is unlinked on the spot
        # (cascading downward) so level sizes track the live structure.
        saved_max, saved_deadline = self.max_nodes, self._deadline
        self.max_nodes = None
        self._deadline = None
        try:
            for n, f11, f10, f01, f00, h, l in interacting:
                if refs is None:
                    nh = self._mk(j, f11, f01)
                    nl = self._mk(j, f10, f00)
                else:
                    mark = len(levels)
                    nh = self._mk(j, f11, f01)
                    if len(levels) > mark:
                        refs.append(0)
                        refs[f11 >> 1] += 1
                        refs[f01 >> 1] += 1
                    mark = len(levels)
                    nl = self._mk(j, f10, f00)
                    if len(levels) > mark:
                        refs.append(0)
                        refs[f10 >> 1] += 1
                        refs[f00 >> 1] += 1
                    refs[nh >> 1] += 1
                    refs[nl >> 1] += 1
                highs[n] = nh
                lows[n] = nl
                unique[(i, nh, nl)] = n
                members[i].append(n)
                if refs is not None:
                    self._deref(h >> 1, refs)
                    self._deref(l >> 1, refs)
        finally:
            self.max_nodes = saved_max
            self._deadline = saved_deadline
        name_i, name_j = self._var_names[i], self._var_names[j]
        self._var_names[i], self._var_names[j] = name_j, name_i
        self._name_to_level[name_i] = j
        self._name_to_level[name_j] = i
        self._reorder_swaps += 1
        if len(self._level) > self._peak_nodes:
            self._peak_nodes = len(self._level)
        return len(members[i]) + len(members[j]) - before

    def _deref(self, node: int, refs: List[int]) -> None:
        """Drop one reference; unlink the node if none remain.

        Only used under a sifting session.  A dead node is removed from
        the unique table and its level's member list (so sizes stay
        honest) but its array slots remain as a tombstone until the
        next collection — node ids must stay stable.  Children are
        dereferenced recursively; depth is bounded by the level count.
        """
        refs[node] -= 1
        if node == 0 or refs[node] > 0:
            return
        level = self._level[node]
        del self._unique[(level, self._high[node], self._low[node])]
        self._level_members[level].remove(node)
        self._deref(self._high[node] >> 1, refs)
        self._deref(self._low[node] >> 1, refs)

    def _flush_after_reorder(self) -> None:
        """Close a reordering session: level-keyed state is stale.

        The purely edge-keyed memo tables (_ite_cache & co.) would stay
        semantically valid — node ids keep their functions across a
        swap — but the quantification caches key on level-set ids, and
        _levelset_ids itself now maps frozensets of levels that mean
        different variables, so everything goes in one flush.
        gc_epoch bumps so external caches flush too: SizeMemo holds
        node counts and PairCache holds pair-product profiles that the
        new order has invalidated.
        """
        self.clear_caches()
        self._levelset_ids.clear()
        self.gc_epoch += 1

    def _check_budgets(self) -> None:
        """Enforce node/time budgets at a swap boundary.

        Swaps are atomic with respect to budgets: _swap_adjacent runs
        unbudgeted and the caller checks here, so a
        BudgetExceededError always leaves a consistent manager.
        """
        if self.max_nodes is not None \
                and len(self._level) - 1 > self.max_nodes:
            raise BudgetExceededError("node", self.max_nodes)
        if self._deadline is not None \
                and time.monotonic() > self._deadline:
            raise BudgetExceededError("time", self._deadline)

    def maybe_sift(self) -> bool:
        """Sift when live nodes grew past the trigger factor.

        Runs at the same safe points as :meth:`auto_collect` (which
        calls it) when an engine armed :attr:`auto_sift_trigger`.  The
        baseline is the live size after the previous sift, established
        lazily on the first call past the floor.  A cheap allocated-size
        gate avoids the O(live) reachability sweep on most calls.
        """
        if self.auto_sift_trigger is None or self._in_reorder:
            return False
        if len(self._var_names) < 2:
            return False
        baseline = self._auto_sift_baseline
        floor = max(self.auto_sift_min_live,
                    int((baseline or 0) * self.auto_sift_trigger))
        if len(self._level) < floor:
            return False  # allocated >= live, so live can't be there yet
        live = self.num_live_nodes()
        if baseline is None or live < self.auto_sift_min_live:
            if baseline is None:
                self._auto_sift_baseline = live
            return False
        if live < baseline * self.auto_sift_trigger:
            return False
        self.sift(reason="auto")
        # sift() ends with a collection, so allocated == live here.
        self._auto_sift_baseline = len(self._level)
        return True

    def sift(self, max_growth: float = 1.2,
             max_vars: Optional[int] = None, reason: str = "manual"):
        """Rudell sifting, in place; see :func:`repro.bdd.sift.sift`."""
        from .sift import sift as _sift
        return _sift(self, max_growth=max_growth, max_vars=max_vars,
                     reason=reason)

    # ------------------------------------------------------------------
    # Node construction
    # ------------------------------------------------------------------

    def _var_edge(self, level: int) -> int:
        return self._mk(level, 0, 1)

    def _mk(self, level: int, high: int, low: int) -> int:
        """Find-or-create the node (level, high, low); returns an edge.

        Enforces both reduction rules (no redundant node, unique table)
        and the complement-edge canonical form (regular then-edge).
        """
        if high == low:
            return high
        if high & 1:
            return self._mk_raw(level, high ^ 1, low ^ 1) | 1
        return self._mk_raw(level, high, low)

    def _mk_raw(self, level: int, high: int, low: int) -> int:
        key = (level, high, low)
        node = self._unique.get(key)
        if node is not None:
            return node << 1
        node = len(self._level)
        if self.max_nodes is not None and node > self.max_nodes:
            raise BudgetExceededError("node", self.max_nodes)
        if self._deadline is not None:
            self._time_check_countdown -= 1
            if self._time_check_countdown <= 0:
                self._time_check_countdown = 4096
                if time.monotonic() > self._deadline:
                    raise BudgetExceededError(
                        "time", self._deadline)
        self._level.append(level)
        self._high.append(high)
        self._low.append(low)
        self._unique[key] = node
        self._level_members[level].append(node)
        self._nodes_created += 1
        if node + 1 > self._peak_nodes:
            self._peak_nodes = node + 1
        return node << 1

    # ------------------------------------------------------------------
    # Edge inspection helpers (internal)
    # ------------------------------------------------------------------

    def _edge_level(self, edge: int) -> int:
        return self._level[edge >> 1]

    def _cofactors(self, edge: int) -> Tuple[int, int]:
        """High and low cofactors of an edge at its own top level."""
        node = edge >> 1
        sign = edge & 1
        return self._high[node] ^ sign, self._low[node] ^ sign

    def _cofactors_at(self, edge: int, level: int) -> Tuple[int, int]:
        """Cofactors with respect to ``level`` (identity if below top)."""
        node = edge >> 1
        if self._level[node] != level:
            return edge, edge
        sign = edge & 1
        return self._high[node] ^ sign, self._low[node] ^ sign

    # ------------------------------------------------------------------
    # Core operation: if-then-else
    # ------------------------------------------------------------------

    def _ite(self, f: int, g: int, h: int) -> int:
        # Terminal cases.
        if f == 0:
            return g
        if f == 1:
            return h
        if g == h:
            return g
        if g == 0 and h == 1:
            return f
        if g == 1 and h == 0:
            return f ^ 1
        if g == f:
            g = 0
        elif g == (f ^ 1):
            g = 1
        if h == f:
            h = 1
        elif h == (f ^ 1):
            h = 0
        if g == h:
            return g
        if g == 0 and h == 1:
            return f
        if g == 1 and h == 0:
            return f ^ 1
        # Canonicalize: regular f, then regular g (complement the result).
        if f & 1:
            f, g, h = f ^ 1, h, g
        negate = False
        if g & 1:
            g, h = g ^ 1, h ^ 1
            negate = True
        key = (f, g, h)
        cache = self._ite_cache
        result = cache.get(key)
        if result is None:
            self._ite_misses += 1
            levels = self._level
            lf = levels[f >> 1]
            lg = levels[g >> 1]
            lh = levels[h >> 1]
            top = lf if lf < lg else lg
            if lh < top:
                top = lh
            f1, f0 = self._cofactors_at(f, top)
            g1, g0 = self._cofactors_at(g, top)
            h1, h0 = self._cofactors_at(h, top)
            result = self._mk(top, self._ite(f1, g1, h1),
                              self._ite(f0, g0, h0))
            cache[key] = result
        else:
            self._ite_hits += 1
        return result ^ 1 if negate else result

    def _and(self, f: int, g: int) -> int:
        return self._ite(f, g, 1)

    def _or(self, f: int, g: int) -> int:
        return self._ite(f, 0, g)

    def _xor(self, f: int, g: int) -> int:
        return self._ite(f, g ^ 1, g)

    def _implies(self, f: int, g: int) -> int:
        return self._ite(f, g, 0)

    def _iff(self, f: int, g: int) -> int:
        return self._ite(f, g, g ^ 1)

    # ------------------------------------------------------------------
    # Quantification
    # ------------------------------------------------------------------

    def _levelset_id(self, levelset: frozenset) -> int:
        key = self._levelset_ids.get(levelset)
        if key is None:
            key = len(self._levelset_ids)
            self._levelset_ids[levelset] = key
        return key

    def _exists(self, f: int, levels: frozenset, levels_key: int,
                max_level: int) -> int:
        if f <= 1 or self._level[f >> 1] > max_level:
            return f
        key = (f, levels_key, 0)
        cached = self._quant_cache.get(key)
        if cached is not None:
            self._quant_hits += 1
            return cached
        self._quant_misses += 1
        top = self._level[f >> 1]
        f1, f0 = self._cofactors(f)
        r1 = self._exists(f1, levels, levels_key, max_level)
        if top in levels:
            if r1 == 0:
                result = 0
            else:
                r0 = self._exists(f0, levels, levels_key, max_level)
                result = self._or(r1, r0)
        else:
            r0 = self._exists(f0, levels, levels_key, max_level)
            result = self._mk(top, r1, r0)
        self._quant_cache[key] = result
        return result

    def _quantify(self, f: int, levels: Iterable[int], exist: bool) -> int:
        levelset = frozenset(levels)
        if not levelset:
            return f
        levels_key = self._levelset_id(levelset)
        max_level = max(levelset)
        if exist:
            return self._exists(f, levelset, levels_key, max_level)
        return self._exists(f ^ 1, levelset, levels_key, max_level) ^ 1

    # ------------------------------------------------------------------
    # Relational product (and-exists)
    # ------------------------------------------------------------------

    def _and_exists(self, f: int, g: int, levels: frozenset,
                    levels_key: int, max_level: int) -> int:
        # Edge encoding reminder: 0 is True, 1 is False.
        if f == 1 or g == 1:
            return 1
        if f == 0 or f == g:
            return self._exists(g, levels, levels_key, max_level)
        if g == 0:
            return self._exists(f, levels, levels_key, max_level)
        if f == (g ^ 1):
            return 1  # f AND not-f is False; exists of False is False
        if f > g:
            f, g = g, f
        levf = self._level[f >> 1]
        levg = self._level[g >> 1]
        top = levf if levf < levg else levg
        if top > max_level:
            return self._and(f, g)
        key = (f, g, levels_key, 0)
        cached = self._andex_cache.get(key)
        if cached is not None:
            self._andex_hits += 1
            return cached
        self._andex_misses += 1
        f1, f0 = self._cofactors_at(f, top)
        g1, g0 = self._cofactors_at(g, top)
        r1 = self._and_exists(f1, g1, levels, levels_key, max_level)
        if top in levels:
            if r1 == 0:
                result = 0
            else:
                r0 = self._and_exists(f0, g0, levels, levels_key, max_level)
                result = self._or(r1, r0)
        else:
            r0 = self._and_exists(f0, g0, levels, levels_key, max_level)
            result = self._mk(top, r1, r0)
        self._andex_cache[key] = result
        return result

    def _relprod(self, f: int, g: int, levels: Iterable[int]) -> int:
        metrics = self.metrics
        spans = self.spans
        if metrics.enabled or spans.enabled:
            handle = spans.open_span("relprod") if spans.enabled else None
            started = time.perf_counter()
            result = self._relprod_impl(f, g, levels)
            if metrics.enabled:
                metrics.inc("bdd_relprod_calls")
                metrics.observe_time("bdd_relprod_seconds",
                                     time.perf_counter() - started)
            spans.close_span(handle)
            return result
        return self._relprod_impl(f, g, levels)

    def _relprod_impl(self, f: int, g: int, levels: Iterable[int]) -> int:
        levelset = frozenset(levels)
        if not levelset:
            return self._and(f, g)
        return self._and_exists(f, g, levelset, self._levelset_id(levelset),
                                max(levelset))

    # ------------------------------------------------------------------
    # Composition
    # ------------------------------------------------------------------

    def _vector_compose(self, f: int, subst: Dict[int, int]) -> int:
        """Simultaneously substitute ``subst[level]`` for each variable."""
        if not subst:
            return f
        self._compose_key += 1
        cache: Dict[int, int] = {}
        self._compose_caches[self._compose_key] = cache
        max_level = max(subst)
        try:
            return self._vcompose_rec(f, subst, cache, max_level)
        finally:
            del self._compose_caches[self._compose_key]

    def _vcompose_rec(self, f: int, subst: Dict[int, int],
                      cache: Dict[int, int], max_level: int) -> int:
        if f <= 1:
            return f
        node = f >> 1
        if self._level[node] > max_level:
            return f
        sign = f & 1
        cached = cache.get(node)
        if cached is None:
            top = self._level[node]
            h = self._vcompose_rec(self._high[node], subst, cache, max_level)
            l = self._vcompose_rec(self._low[node], subst, cache, max_level)
            g = subst.get(top)
            if g is None:
                g = self._var_edge(top)
            cached = self._ite(g, h, l)
            cache[node] = cached
        return cached ^ sign

    def _rename(self, f: int, levelmap: Dict[int, int]) -> int:
        """Rename variables by an order-preserving level map.

        Only valid when the map is monotone with respect to the variable
        order and the image levels do not collide with unmapped levels in
        the support (checked by :meth:`Function.rename`).  Implemented as
        vector compose with variable targets, which is always safe.
        """
        subst = {src: self._var_edge(dst) for src, dst in levelmap.items()}
        return self._vector_compose(f, subst)

    # ------------------------------------------------------------------
    # Generalized cofactors: Restrict and Constrain
    # ------------------------------------------------------------------

    def _restrict(self, f: int, c: int) -> int:
        """Coudert–Berthet–Madre Restrict (a.k.a. "Reduce" [20]).

        Returns a BDD that agrees with ``f`` wherever ``c`` is true and
        is often (not always) smaller.  Matches the recursive definition
        quoted in the paper's proof of Theorem 3.

        ``c`` equal to the constant False means an empty care set, for
        which any result is acceptable; we return ``f`` unchanged so the
        operator stays total.
        """
        metrics = self.metrics
        spans = self.spans
        if metrics.enabled or spans.enabled:
            handle = spans.open_span("restrict") if spans.enabled else None
            started = time.perf_counter()
            sign = f & 1
            result = self._restrict_rec(f ^ sign, c)
            if metrics.enabled:
                metrics.inc("bdd_restrict_calls")
                metrics.observe_time("bdd_restrict_seconds",
                                     time.perf_counter() - started)
            spans.close_span(handle)
            return result ^ sign
        sign = f & 1
        result = self._restrict_rec(f ^ sign, c)
        return result ^ sign

    def _restrict_rec(self, f: int, c: int) -> int:
        # Edge encoding reminder: 0 is True, 1 is False.
        if c <= 1 or f <= 1:
            return f
        key = (f, c)
        cached = self._restrict_cache.get(key)
        if cached is not None:
            self._restrict_hits += 1
            return cached
        self._restrict_misses += 1
        lf = self._level[f >> 1]
        lc = self._level[c >> 1]
        if lc < lf:
            # Top variable of c does not appear in f: f_x = f_xbar, so
            # restrict by (c_x or c_xbar), i.e. existentially drop x.
            c1, c0 = self._cofactors(c)
            result = self._restrict_rec(f, self._or(c1, c0))
        else:
            f1, f0 = self._cofactors(f)
            if lf < lc:
                c1 = c0 = c
            else:
                c1, c0 = self._cofactors(c)
            if c1 == 1:  # c_x is False
                result = self._restrict_rec(f0, c0)
            elif c0 == 1:  # c_xbar is False
                result = self._restrict_rec(f1, c1)
            else:
                result = self._mk(lf, self._restrict_rec(f1, c1),
                                  self._restrict_rec(f0, c0))
        self._restrict_cache[key] = result
        return result

    def _constrain(self, f: int, c: int) -> int:
        """Coudert–Madre Constrain (the original generalized cofactor)."""
        metrics = self.metrics
        spans = self.spans
        if metrics.enabled or spans.enabled:
            handle = spans.open_span("constrain") if spans.enabled else None
            started = time.perf_counter()
            sign = f & 1
            result = self._constrain_rec(f ^ sign, c)
            if metrics.enabled:
                metrics.inc("bdd_constrain_calls")
                metrics.observe_time("bdd_constrain_seconds",
                                     time.perf_counter() - started)
            spans.close_span(handle)
            return result ^ sign
        sign = f & 1
        result = self._constrain_rec(f ^ sign, c)
        return result ^ sign

    def _constrain_rec(self, f: int, c: int) -> int:
        if c <= 1 or f <= 1:
            return f
        if f == c:
            return 0  # On the care set, f is true everywhere.
        if f == (c ^ 1):
            return 1  # On the care set, f is false everywhere.
        key = (f, c)
        cached = self._constrain_cache.get(key)
        if cached is not None:
            self._constrain_hits += 1
            return cached
        self._constrain_misses += 1
        lf = self._level[f >> 1]
        lc = self._level[c >> 1]
        top = lf if lf < lc else lc
        f1, f0 = self._cofactors_at(f, top)
        c1, c0 = self._cofactors_at(c, top)
        if c1 == 1:  # c_x is False
            result = self._constrain_rec(f0, c0)
        elif c0 == 1:  # c_xbar is False
            result = self._constrain_rec(f1, c1)
        else:
            result = self._mk(top, self._constrain_rec(f1, c1),
                              self._constrain_rec(f0, c0))
        self._constrain_cache[key] = result
        return result

    # ------------------------------------------------------------------
    # Structural queries
    # ------------------------------------------------------------------

    def _intersects(self, f: int, g: int,
                    seen: Optional[set] = None) -> bool:
        """Whether ``f and g`` is satisfiable, without building the
        conjunction.

        Depth-first search for one common satisfying path, pruning
        visited (f, g) pairs.  Worst case matches ``_and``, but typical
        intersection checks exit on the first witness — this backs the
        engines' violation tests (``S`` against each ``not X_j``).
        """
        if f == 1 or g == 1 or f == (g ^ 1):
            return False
        if f == 0:
            return g != 1
        if g == 0 or f == g:
            return True
        if f > g:
            f, g = g, f
        if seen is None:
            seen = set()
        key = (f, g)
        if key in seen:
            return False  # already explored, found nothing
        seen.add(key)
        lf = self._level[f >> 1]
        lg = self._level[g >> 1]
        top = lf if lf < lg else lg
        f1, f0 = self._cofactors_at(f, top)
        g1, g0 = self._cofactors_at(g, top)
        if self._intersects(f1, g1, seen):
            return True
        return self._intersects(f0, g0, seen)

    def _support_levels(self, edge: int) -> frozenset:
        seen = set()
        support = set()
        stack = [edge >> 1]
        while stack:
            node = stack.pop()
            if node == 0 or node in seen:
                continue
            seen.add(node)
            support.add(self._level[node])
            stack.append(self._high[node] >> 1)
            stack.append(self._low[node] >> 1)
        return frozenset(support)

    def _count_nodes(self, edges: Iterable[int]) -> int:
        """Number of distinct nodes (terminal included) under the roots.

        This is the paper's ``BDDSize`` with node sharing taken into
        account: ``BDDSize(X_i, X_j)`` counts shared structure once.
        """
        seen = set()
        stack = [e >> 1 for e in edges]
        nontrivial = False
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            if node == 0:
                continue
            nontrivial = True
            stack.append(self._high[node] >> 1)
            stack.append(self._low[node] >> 1)
        if not nontrivial:
            return 1 if seen else 0
        seen.add(0)
        return len(seen)

    def _eval(self, edge: int, assignment: Dict[int, bool]) -> bool:
        """Evaluate under a total assignment (by level)."""
        while edge > 1:
            node = edge >> 1
            sign = edge & 1
            level = self._level[node]
            try:
                value = assignment[level]
            except KeyError:
                raise KeyError(
                    f"assignment missing variable "
                    f"{self._var_names[level]!r}") from None
            edge = (self._high[node] if value else self._low[node]) ^ sign
        return edge == 0

    def _eval_batch(self, edge: int, columns: Dict[int, Sequence[bool]],
                    count: int) -> List[bool]:
        """Evaluate ``edge`` under ``count`` assignments at once.

        ``columns`` maps level -> one value per assignment; the caller
        (:meth:`Function.evaluate_batch`) has already checked that the
        support is covered.  The array kernel overrides this with a
        vectorized level-by-level walk.
        """
        highs = self._high
        lows = self._low
        levels = self._level
        out = []
        for b in range(count):
            e = edge
            while e > 1:
                node = e >> 1
                e = (highs[node] if columns[levels[node]][b]
                     else lows[node]) ^ (e & 1)
            out.append(e == 0)
        return out

    # ------------------------------------------------------------------
    # Function construction helpers
    # ------------------------------------------------------------------

    def from_edge(self, edge: int) -> "Function":
        """Wrap a raw edge (internal integrations and tests only)."""
        return Function(self, edge)

    def conj(self, functions: Iterable["Function"]) -> "Function":
        """Conjunction of several functions (True for empty input)."""
        edge = 0
        for fn in functions:
            self._check_manager(fn)
            edge = self._and(edge, fn.edge)
            if edge == 1:
                break
        return Function(self, edge)

    def disj(self, functions: Iterable["Function"]) -> "Function":
        """Disjunction of several functions (False for empty input)."""
        edge = 1
        for fn in functions:
            self._check_manager(fn)
            edge = self._or(edge, fn.edge)
            if edge == 0:
                break
        return Function(self, edge)

    def ite(self, f: "Function", g: "Function", h: "Function") -> "Function":
        """If-then-else of three functions."""
        for fn in (f, g, h):
            self._check_manager(fn)
        return Function(self, self._ite(f.edge, g.edge, h.edge))

    def count_nodes(self, functions: Iterable["Function"]) -> int:
        """Shared node count over several roots (paper's BDDSize)."""
        return self._count_nodes(fn.edge for fn in functions)

    def cube(self, assignment: Dict[str, bool]) -> "Function":
        """Conjunction of literals given as ``{name: polarity}``."""
        edge = 0
        for name in sorted(assignment,
                           key=lambda n: self._name_to_level[n],
                           reverse=True):
            level = self._name_to_level[name]
            var = self._var_edge(level)
            lit = var if assignment[name] else var ^ 1
            edge = self._and(lit, edge)
        return Function(self, edge)

    def _check_manager(self, fn: "Function") -> None:
        if fn.bdd is not self:
            raise ValueError("mixing functions from different managers")


class Function:
    """A Boolean function: an edge into a :class:`BDD` manager.

    Supports the usual operators (``& | ^ ~``), comparisons for
    *identity of function* via :meth:`equiv`, and structural queries.
    Instances always denote the same Boolean function, but
    :meth:`BDD.garbage_collect` may renumber the underlying edge —
    hashes are therefore only stable between collections; avoid holding
    Functions in hash-based containers across engine iterations.
    """

    __slots__ = ("bdd", "edge", "__weakref__")

    def __init__(self, bdd: BDD, edge: int) -> None:
        self.bdd = bdd
        self.edge = edge
        bdd._register(self)

    # -- operators ------------------------------------------------------

    def __and__(self, other: "Function") -> "Function":
        self.bdd._check_manager(other)
        metrics = self.bdd.metrics
        spans = self.bdd.spans
        if metrics.enabled or spans.enabled:
            handle = spans.open_span("apply") if spans.enabled else None
            started = time.perf_counter()
            edge = self.bdd._and(self.edge, other.edge)
            if metrics.enabled:
                metrics.inc("bdd_apply_calls")
                metrics.observe_time("bdd_apply_seconds",
                                     time.perf_counter() - started)
            spans.close_span(handle)
            return Function(self.bdd, edge)
        return Function(self.bdd, self.bdd._and(self.edge, other.edge))

    def __or__(self, other: "Function") -> "Function":
        self.bdd._check_manager(other)
        metrics = self.bdd.metrics
        spans = self.bdd.spans
        if metrics.enabled or spans.enabled:
            handle = spans.open_span("apply") if spans.enabled else None
            started = time.perf_counter()
            edge = self.bdd._or(self.edge, other.edge)
            if metrics.enabled:
                metrics.inc("bdd_apply_calls")
                metrics.observe_time("bdd_apply_seconds",
                                     time.perf_counter() - started)
            spans.close_span(handle)
            return Function(self.bdd, edge)
        return Function(self.bdd, self.bdd._or(self.edge, other.edge))

    def __xor__(self, other: "Function") -> "Function":
        self.bdd._check_manager(other)
        metrics = self.bdd.metrics
        spans = self.bdd.spans
        if metrics.enabled or spans.enabled:
            handle = spans.open_span("apply") if spans.enabled else None
            started = time.perf_counter()
            edge = self.bdd._xor(self.edge, other.edge)
            if metrics.enabled:
                metrics.inc("bdd_apply_calls")
                metrics.observe_time("bdd_apply_seconds",
                                     time.perf_counter() - started)
            spans.close_span(handle)
            return Function(self.bdd, edge)
        return Function(self.bdd, self.bdd._xor(self.edge, other.edge))

    def __invert__(self) -> "Function":
        return Function(self.bdd, self.edge ^ 1)

    def implies(self, other: "Function") -> "Function":
        """The function ``self -> other``."""
        self.bdd._check_manager(other)
        return Function(self.bdd, self.bdd._implies(self.edge, other.edge))

    def iff(self, other: "Function") -> "Function":
        """The function ``self <-> other``."""
        self.bdd._check_manager(other)
        return Function(self.bdd, self.bdd._iff(self.edge, other.edge))

    # -- predicates -----------------------------------------------------

    @property
    def is_true(self) -> bool:
        """Whether this is the constant True."""
        return self.edge == 0

    @property
    def is_false(self) -> bool:
        """Whether this is the constant False."""
        return self.edge == 1

    @property
    def is_constant(self) -> bool:
        """Whether this is True or False."""
        return self.edge <= 1

    def equiv(self, other: "Function") -> bool:
        """Function equality (constant time, thanks to canonicity)."""
        self.bdd._check_manager(other)
        return self.edge == other.edge

    def is_complement_of(self, other: "Function") -> bool:
        """Whether ``self == not other`` (constant time)."""
        self.bdd._check_manager(other)
        return self.edge == (other.edge ^ 1)

    def entails(self, other: "Function") -> bool:
        """Whether ``self -> other`` is valid.

        Implemented as an early-exit intersection test with the
        complement — no implication BDD is materialized, and a single
        counterexample path suffices to answer False.
        """
        self.bdd._check_manager(other)
        return not self.bdd._intersects(self.edge, other.edge ^ 1)

    def intersects(self, other: "Function") -> bool:
        """Whether ``self and other`` is satisfiable (early exit)."""
        self.bdd._check_manager(other)
        return self.bdd._intersects(self.edge, other.edge)

    # -- quantifiers and substitution ------------------------------------

    def exists(self, names: Iterable[str]) -> "Function":
        """Existentially quantify the named variables."""
        levels = [self.bdd.level_of(n) for n in names]
        return Function(self.bdd, self.bdd._quantify(self.edge, levels, True))

    def forall(self, names: Iterable[str]) -> "Function":
        """Universally quantify the named variables."""
        levels = [self.bdd.level_of(n) for n in names]
        return Function(self.bdd,
                        self.bdd._quantify(self.edge, levels, False))

    def and_exists(self, other: "Function",
                   names: Iterable[str]) -> "Function":
        """Relational product: ``exists names. self & other``."""
        self.bdd._check_manager(other)
        levels = [self.bdd.level_of(n) for n in names]
        return Function(self.bdd,
                        self.bdd._relprod(self.edge, other.edge, levels))

    def compose(self, substitution: Dict[str, "Function"]) -> "Function":
        """Simultaneously substitute functions for variables by name."""
        subst = {}
        for name, fn in substitution.items():
            self.bdd._check_manager(fn)
            subst[self.bdd.level_of(name)] = fn.edge
        return Function(self.bdd, self.bdd._vector_compose(self.edge, subst))

    def rename(self, mapping: Dict[str, str]) -> "Function":
        """Rename variables; implemented as a safe vector compose."""
        levelmap = {self.bdd.level_of(src): self.bdd.level_of(dst)
                    for src, dst in mapping.items()}
        return Function(self.bdd, self.bdd._rename(self.edge, levelmap))

    def restrict(self, care: "Function") -> "Function":
        """Care-set simplification (Coudert–Berthet–Madre Restrict)."""
        self.bdd._check_manager(care)
        return Function(self.bdd, self.bdd._restrict(self.edge, care.edge))

    def constrain(self, care: "Function") -> "Function":
        """Generalized cofactor (Coudert–Madre Constrain)."""
        self.bdd._check_manager(care)
        return Function(self.bdd, self.bdd._constrain(self.edge, care.edge))

    def cofactor(self, name: str, value: bool) -> "Function":
        """Shannon cofactor with respect to one variable."""
        level = self.bdd.level_of(name)
        edge = self.edge
        node = edge >> 1
        if self.bdd._level[node] == level:
            high, low = self.bdd._cofactors(edge)
            return Function(self.bdd, high if value else low)
        if level in self.bdd._support_levels(edge):
            var = self.bdd._var_edge(level)
            lit = var if value else var ^ 1
            # General cofactor below the root: constrain by the literal.
            return Function(self.bdd, self.bdd._constrain(edge, lit))
        return self

    # -- structure --------------------------------------------------------

    def support(self) -> frozenset:
        """The set of variable names this function depends on."""
        return frozenset(self.bdd._var_names[lvl]
                         for lvl in self.bdd._support_levels(self.edge))

    def size(self) -> int:
        """Node count of this BDD (terminal included)."""
        return self.bdd._count_nodes((self.edge,))

    @property
    def top_var(self) -> Optional[str]:
        """Name of the root variable, or None for constants."""
        level = self.bdd._edge_level(self.edge)
        if level == TERMINAL_LEVEL:
            return None
        return self.bdd._var_names[level]

    def evaluate(self, assignment: Dict[str, bool]) -> bool:
        """Evaluate under an assignment ``{name: value}``."""
        by_level = {self.bdd._name_to_level[n]: v
                    for n, v in assignment.items()}
        return self.bdd._eval(self.edge, by_level)

    def evaluate_batch(
            self, columns: Dict[str, Sequence[bool]]) -> List[bool]:
        """Evaluate under a whole batch of assignments at once.

        ``columns`` is columnar: each variable name maps to one value
        per assignment, all columns the same length.  Returns one bool
        per assignment (row).  Every variable in the function's support
        must have a column; extras are ignored.  On the array kernel
        this is a vectorized level-by-level walk over the whole batch —
        the bulk analogue of :meth:`evaluate` for simulation
        cross-checks and counterexample sampling.
        """
        bdd = self.bdd
        if not columns:
            raise ValueError(
                "evaluate_batch needs at least one assignment column")
        by_level = {}
        count = None
        for name, col in columns.items():
            if count is None:
                count = len(col)
            elif len(col) != count:
                raise ValueError(
                    f"assignment column {name!r} has {len(col)} values, "
                    f"expected {count}")
            by_level[bdd._name_to_level[name]] = col
        for level in bdd._support_levels(self.edge):
            if level not in by_level:
                raise KeyError(
                    f"assignment missing variable "
                    f"{bdd._var_names[level]!r}")
        return bdd._eval_batch(self.edge, by_level, count)

    # -- dunder plumbing --------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Function):
            return NotImplemented
        return self.bdd is other.bdd and self.edge == other.edge

    def __hash__(self) -> int:
        return hash((id(self.bdd), self.edge))

    def __bool__(self) -> bool:
        raise TypeError(
            "Function truth value is ambiguous; use .is_true/.is_false")

    def __repr__(self) -> str:
        if self.is_true:
            return "Function(True)"
        if self.is_false:
            return "Function(False)"
        return (f"Function(top={self.top_var!r}, "
                f"size={self.size()})")


class EpochGuard:
    """The gc_epoch discipline for external edge-keyed caches.

    Holds the :attr:`BDD.gc_epoch` a cache was last filled under;
    :meth:`refresh` reports (exactly once per epoch change) that the
    manager has renumbered edges, at which point the owning cache must
    flush every stored edge before serving another lookup.
    """

    __slots__ = ("manager", "epoch")

    def __init__(self, manager: BDD) -> None:
        self.manager = manager
        self.epoch = manager.gc_epoch

    def refresh(self) -> bool:
        """Resync with the manager; True when a flush is required."""
        current = self.manager.gc_epoch
        if current != self.epoch:
            self.epoch = current
            return True
        return False
