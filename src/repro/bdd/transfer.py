"""Copying functions between managers — ordering experiments.

Variable order is fixed at creation time in this package (as in the
paper's experiments), so studying how a *different* order would treat
the same functions requires rebuilding them in a second manager.
:func:`copy_function` does that structurally, and
:func:`order_sensitivity` packages the common experiment: how big is
this set of functions under each candidate order?

This is how the ablation benches measure the cost of giving up the
interleaved-bitslice heuristic without rebuilding whole models.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from .manager import BDD, Function

__all__ = ["copy_function", "order_sensitivity"]


def copy_function(fn: Function, target: BDD,
                  rename: Optional[Dict[str, str]] = None) -> Function:
    """Rebuild ``fn`` inside ``target`` (any variable order).

    Every variable in ``fn``'s support must already exist in ``target``
    (after applying ``rename``, if given).  The rebuild is a structural
    bottom-up traversal; the target manager's order decides the size of
    the result.
    """
    source = fn.bdd
    rename = rename or {}
    cache: Dict[int, int] = {0: 0}

    def target_var(level: int) -> Function:
        name = source._var_names[level]
        return target.var(rename.get(name, name))

    def rebuild(edge: int) -> int:
        node = edge >> 1
        sign = edge & 1
        cached = cache.get(node)
        if cached is None:
            high = rebuild(source._high[node])
            low = rebuild(source._low[node])
            var = target_var(source._level[node])
            cached = target._ite(var.edge, high, low)
            cache[node] = cached
        return cached ^ sign

    return Function(target, rebuild(fn.edge))


def order_sensitivity(functions: Sequence[Function],
                      orders: Dict[str, Sequence[str]]
                      ) -> Dict[str, int]:
    """Shared size of ``functions`` under each candidate order.

    ``orders`` maps a label to a variable-name sequence; each must
    cover the union of the functions' supports.  Returns
    ``{label: shared node count}``.
    """
    if not functions:
        return {label: 0 for label in orders}
    support = set()
    for fn in functions:
        support |= fn.support()
    results: Dict[str, int] = {}
    for label, order in orders.items():
        missing = support - set(order)
        if missing:
            raise ValueError(
                f"order {label!r} misses variables: {sorted(missing)}")
        target = BDD()
        for name in order:
            target.new_var(name)
        copies = [copy_function(fn, target) for fn in functions]
        results[label] = target.count_nodes(copies)
    return results
