"""Satisfying-assignment utilities: counting, picking, enumerating.

These back the counterexample machinery (a violation trace is a chain
of picked assignments) and the explicit-state cross-validation oracle.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, Iterator, Optional, Sequence

from .manager import Function

__all__ = ["sat_count", "pick_one", "iter_assignments"]


def sat_count(fn: Function, nvars: Optional[int] = None) -> int:
    """Number of satisfying assignments over ``nvars`` variables.

    ``nvars`` defaults to the number of variables declared in the
    manager.  Counts are exact (Python integers).
    """
    manager = fn.bdd
    if nvars is None:
        nvars = manager.num_vars
    cache: Dict[int, Fraction] = {}

    def fraction_true(edge: int) -> Fraction:
        """Fraction of the full assignment space mapped to True."""
        if edge == 0:
            return Fraction(1)
        if edge == 1:
            return Fraction(0)
        node = edge >> 1
        sign = edge & 1
        cached = cache.get(node)
        if cached is None:
            high = fraction_true(manager._high[node])
            low = fraction_true(manager._low[node])
            cached = (high + low) / 2
            cache[node] = cached
        return (1 - cached) if sign else cached

    total = fraction_true(fn.edge) * (2 ** nvars)
    if total.denominator != 1:
        raise ValueError(
            f"nvars={nvars} too small for the support of this function")
    return int(total)


def pick_one(fn: Function,
             care_names: Optional[Sequence[str]] = None) -> Optional[Dict[str, bool]]:
    """Return one satisfying assignment, or None if unsatisfiable.

    The assignment covers the function's support plus any requested
    ``care_names`` (filled with False where the function doesn't care).
    """
    if fn.is_false:
        return None
    manager = fn.bdd
    assignment: Dict[str, bool] = {}
    edge = fn.edge
    while edge > 1:
        node = edge >> 1
        sign = edge & 1
        name = manager._var_names[manager._level[node]]
        high = manager._high[node] ^ sign
        low = manager._low[node] ^ sign
        if high != 1:  # high branch satisfiable
            assignment[name] = True
            edge = high
        else:
            assignment[name] = False
            edge = low
    if care_names:
        for name in care_names:
            assignment.setdefault(name, False)
    return assignment


def iter_assignments(fn: Function,
                     names: Sequence[str]) -> Iterator[Dict[str, bool]]:
    """Enumerate all satisfying assignments over exactly ``names``.

    Variables outside ``names`` must not appear in the support.
    """
    extra = fn.support() - frozenset(names)
    if extra:
        raise ValueError(f"support contains unexpected variables: {extra}")
    manager = fn.bdd
    ordered = sorted(names, key=manager.level_of)

    def recurse(edge: int, index: int) -> Iterator[Dict[str, bool]]:
        if edge == 1:
            return
        if index == len(ordered):
            yield {}
            return
        name = ordered[index]
        level = manager.level_of(name)
        node = edge >> 1
        sign = edge & 1
        if edge > 1 and manager._level[node] == level:
            high = manager._high[node] ^ sign
            low = manager._low[node] ^ sign
        else:
            high = low = edge
        for value, branch in ((False, low), (True, high)):
            for rest in recurse(branch, index + 1):
                rest[name] = value
                yield rest

    yield from recurse(fn.edge, 0)
