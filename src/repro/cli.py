"""Command-line interface: ``python -m repro``.

Subcommands:

* ``verify`` — run one verification method on one model::

      python -m repro verify --model fifo --depth 5 --method xici
      python -m repro verify --model pipeline --regs 2 --bits 1 \\
          --method xici --bug no-bypass --show-trace

  (A bare invocation — ``python -m repro --model fifo ...`` — still
  works as a deprecated alias for ``verify``.)

* ``serve`` — run the verification job server (see docs/SERVICE.md)::

      python -m repro serve --port 8080 --ledger runs/ --token s3cret

* ``tables`` — regenerate the paper's tables (paper-vs-measured)::

      python -m repro tables --table 1-fifo
      python -m repro tables --table all --scale paper

* ``bench-report`` — render a ``BENCH_*.json`` benchmark report, or
  gate one against a baseline (``--against``; exit 1 on regressions).
  The baseline may be a report file or ``perf:<n>`` — a recorded perf
  history point (``perf:-1`` = latest).

* ``perf`` — the perf trajectory observatory
  (docs/OBSERVABILITY.md, "Perf trajectory")::

      python -m repro perf record BENCH_evaluator.json --ledger runs/
      python -m repro perf trend --ledger runs/
      python -m repro perf attribute "run:fifo-8/XICI/<hash>" \\
          --ledger runs/
      python -m repro perf report --ledger runs/ --output report.md

* ``models`` — list available models and their parameters.

Machine-readable runs: ``verify --json`` prints the
:meth:`VerificationResult.to_dict` schema, ``--trace FILE`` streams
structured engine events as JSONL (render with
``benchmarks/trace_report.py``), and ``--trace-summary`` prints the
aggregated per-run tally.  ``--metrics FILE`` collects counters,
histograms, and the resource-sampler timeline and writes them to FILE
(JSONL; a ``.prom`` suffix switches to the Prometheus textfile
format); ``--metrics-summary`` prints the one-shot metrics report.

Span profiling and the run ledger: ``--spans FILE`` records the nested
phase spans and writes a Chrome Trace Event JSON (Perfetto-loadable; a
``.speedscope.json`` suffix switches to the speedscope format);
``--spans-summary`` prints the self-time rollup.  ``--heartbeat SECS``
prints live progress lines to stderr while the run works.
``--ledger DIR`` archives the finished run content-addressed;
``repro ledger`` lists/shows archived runs and
``repro compare RUN_A RUN_B`` diffs two of them phase-by-phase.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Callable, Dict, List, Optional

from .bdd import kernel_context
from .core import METHODS, Options, Problem, verify
from .iclist.evaluate import GROW_THRESHOLD
from .models import MODELS
from .obs import MetricsRegistry, SpanProfiler, ledger, render_report, \
    render_rollup, write_jsonl, write_prometheus
from .obs import benchjson, perf, trend
from .trace import JsonlTracer, RecordingTracer, Tracer
from .bench.tables import table1_fifo, table1_movavg, table1_network, \
    table2_movavg_unassisted, table3_pipeline

__all__ = ["main"]

_MODEL_HELP = {name: spec.help for name, spec in MODELS.items()}

_TABLES: Dict[str, Callable[[str], object]] = {
    "1-fifo": table1_fifo,
    "1-network": table1_network,
    "1-movavg": table1_movavg,
    "2": table2_movavg_unassisted,
    "3": table3_pipeline,
}


def _build_problem(args: argparse.Namespace) -> Problem:
    spec = MODELS[args.model]
    params = {name: getattr(args, name) for name in spec.params}
    with kernel_context(getattr(args, "kernel", None)):
        return spec.build(bug=args.bug, **params)


def _make_tracer(args: argparse.Namespace) -> Optional[Tracer]:
    if getattr(args, "trace", None):
        return JsonlTracer(args.trace)
    if getattr(args, "trace_summary", False):
        return RecordingTracer()
    return None


def _make_metrics(args: argparse.Namespace) -> Optional[MetricsRegistry]:
    if getattr(args, "metrics", None) \
            or getattr(args, "metrics_summary", False):
        return MetricsRegistry()
    return None


def _make_spans(args: argparse.Namespace) -> Optional[SpanProfiler]:
    if getattr(args, "spans", None) \
            or getattr(args, "spans_summary", False) \
            or getattr(args, "ledger", None):
        return SpanProfiler()
    return None


def _write_spans(spans: SpanProfiler, path: str,
                 args: argparse.Namespace) -> None:
    if path.endswith(".speedscope.json"):
        spans.write_speedscope(path,
                               name=f"{args.model}/{args.method}")
    else:
        spans.write_chrome_trace(path)


def _write_metrics(registry: MetricsRegistry, path: str,
                   args: argparse.Namespace) -> None:
    if path.endswith(".prom"):
        write_prometheus(registry, path)
    else:
        write_jsonl(registry, path,
                    meta={"model": args.model, "method": args.method})


def _cmd_verify(args: argparse.Namespace) -> int:
    problem = _build_problem(args)
    tracer = _make_tracer(args)
    metrics = _make_metrics(args)
    spans = _make_spans(args)
    options = Options.from_args(args, tracer=tracer, metrics=metrics,
                                spans=spans)
    try:
        result = verify(problem, args.method, options,
                        assisted=args.assisted)
    finally:
        if tracer is not None:
            tracer.close()
    if metrics is not None and args.metrics:
        _write_metrics(metrics, args.metrics, args)
    if spans is not None and args.spans:
        _write_spans(spans, args.spans, args)
    if args.ledger:
        run_id = ledger.record_run(args.ledger, result,
                                   config=options.summary(), spans=spans)
        print(f"ledger: {run_id}", file=sys.stderr)
        # Every archived CLI run also contributes one trajectory point
        # to the perf history store, keyed by the same canonical
        # request hash the job server uses.  Best-effort: a broken
        # history file must not fail the verification.
        try:
            from .core.options import request_hash
            spec = MODELS[args.model]
            params = {name: getattr(args, name) for name in spec.params}
            req_hash = request_hash(args.model, args.method,
                                    params=params, bug=args.bug,
                                    assisted=args.assisted,
                                    options=options)
            perf.record_run_point(
                args.ledger,
                ledger.run_document(result, config=options.summary()),
                run_id=run_id, request_hash=req_hash, source="cli")
        except OSError:
            pass
    if args.json:
        print(result.to_json(indent=2))
    else:
        print(f"model     : {problem.name} — {problem.description}")
        print(f"method    : {result.method}"
              + (" (+assisting invariants)" if args.assisted else ""))
        print(f"outcome   : {result.outcome}")
        print(f"iterations: {result.iterations}")
        print(f"time      : {result.elapsed_seconds:.2f}s")
        print(f"largest iterate: {result.max_iterate_profile} nodes")
        print(f"peak table: {result.peak_nodes} nodes "
              f"(~{result.estimated_memory_kb}K)")
        if args.stats:
            _print_stats(result)
        if args.trace_summary and result.trace_summary is not None:
            print("trace summary:")
            print(json.dumps(result.trace_summary, indent=2, default=str))
        if args.metrics_summary and metrics is not None:
            print(render_report(metrics))
        if args.spans_summary and result.span_rollup is not None:
            print(render_rollup(result.span_rollup))
        if result.trace is not None and args.show_trace:
            print(f"counterexample ({len(result.trace)} states):")
            print(result.trace.pretty())
    if result.violated:
        return 1
    if result.exhausted:
        return 2
    return 0


def _print_stats(result) -> None:
    """Render the unified statistics block (``verify --stats``)."""
    print("bdd stats (this run):")
    for key in sorted(result.bdd_stats):
        print(f"  {key:<22} {result.bdd_stats[key]}")
    eval_stats = result.extra.get("evaluation_stats")
    if eval_stats is not None:
        summary = eval_stats.ratio_summary()
        print("evaluator:")
        print(f"  pairs_built            {eval_stats.pairs_built}")
        print(f"  pairs_aborted          {eval_stats.pairs_aborted}")
        print(f"  merges                 {eval_stats.merges}")
        print(f"  merge ratios           count={summary['count']} "
              f"min={summary['min']:.3f} mean={summary['mean']:.3f} "
              f"max={summary['max']:.3f}")
    pair_cache = result.extra.get("pair_cache_stats")
    if pair_cache is not None:
        print("pair cache:")
        for key in sorted(pair_cache):
            print(f"  {key:<22} {pair_cache[key]}")
    reorder = result.reorder_stats
    if reorder and reorder.get("runs"):
        print("reordering:")
        print(f"  sift_runs              {reorder['runs']}")
        print(f"  swaps                  {reorder['swaps']}")
        print(f"  vars_sifted            {reorder['vars_sifted']}")
        print(f"  nodes_saved            {reorder['nodes_saved']}")
        print(f"  seconds                {reorder['seconds']:.3f}")


def _cmd_ledger(args: argparse.Namespace) -> int:
    if args.action == "show":
        if not args.run_id:
            print("ledger show needs a RUN_ID", file=sys.stderr)
            return 2
        run_id, doc = ledger.load_run(args.dir, args.run_id)
        print(json.dumps(doc, indent=2, sort_keys=True))
        return 0
    runs = ledger.list_runs(args.dir)
    if args.ids:
        for run_id, _doc in runs:
            print(run_id)
        return 0
    if not runs:
        print(f"(no runs in {args.dir})")
        return 0
    print(f"{'run id':<14} {'model':<12} {'method':<6} "
          f"{'outcome':<24} {'iters':>5} {'seconds':>9}")
    for run_id, doc in runs:
        result = doc.get("result", {})
        print(f"{run_id:<14} {doc.get('model', '?'):<12} "
              f"{doc.get('method', '?'):<6} "
              f"{str(result.get('outcome')):<24} "
              f"{str(result.get('iterations')):>5} "
              f"{float(result.get('elapsed_seconds') or 0.0):>9.4f}")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    id_a, doc_a = ledger.load_run(args.dir, args.run_a)
    id_b, doc_b = ledger.load_run(args.dir, args.run_b)
    diff = ledger.diff_runs(doc_a, doc_b)
    if args.json:
        print(json.dumps({"run_a": id_a, "run_b": id_b, **diff},
                         indent=2, sort_keys=True))
    else:
        print(ledger.render_run_diff(id_a, doc_a, id_b, doc_b, diff))
    return 0 if diff["passed"] else 1


def _cmd_tables(args: argparse.Namespace) -> int:
    names = list(_TABLES) if args.table == "all" else [args.table]
    for name in names:
        report = _TABLES[name](scale=args.scale)
        print(report.format())
        print()
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    from .fsm import analyze
    problem = _build_problem(args)
    report = analyze(problem.machine, explore=args.explore)
    print(report.format())
    print(f"  property conjuncts: {len(problem.good_conjuncts)}")
    if problem.assisting_invariants:
        print(f"  assisting invariants: "
              f"{len(problem.assisting_invariants)}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from .serve import ServerConfig, VerificationServer, tokens_from_env
    tokens = tuple(args.token or []) + tuple(tokens_from_env())
    config = ServerConfig(
        host=args.host, port=args.port, tokens=tokens,
        rate=args.rate, burst=args.burst, workers=args.workers,
        queue_limit=args.queue_limit, ledger_dir=args.ledger,
        cache=not args.no_cache, job_heartbeat=args.job_heartbeat,
        job_ttl=args.job_ttl, max_finished_jobs=args.max_finished_jobs,
        log_requests=not args.quiet, access_log=args.access_log,
        metrics=not args.no_metrics)
    server = VerificationServer(config)
    print(f"repro serve: listening on {server.url} "
          f"(auth {'on' if server.service.auth.enabled else 'OPEN'}, "
          f"workers {config.workers}, queue {config.queue_limit}, "
          f"ledger {config.ledger_dir or 'off'})", file=sys.stderr)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("repro serve: shutting down", file=sys.stderr)
    return 0


def _cmd_serve_report(args: argparse.Namespace) -> int:
    from .obs.exporters import parse_prometheus, read_jsonl
    from .serve.telemetry import render_service_report
    if args.url:
        from .client import ServiceClient
        client = ServiceClient(args.url, token=args.token)
        data = parse_prometheus(client.metrics())
        source = args.url + "/v1/metrics"
    elif args.source:
        source = args.source
        if args.source.endswith((".jsonl", ".json")):
            data = read_jsonl(args.source).get("summary") or {}
        else:
            with open(args.source, "r", encoding="utf-8") as handle:
                data = parse_prometheus(handle.read())
    else:
        print("serve-report: give a SOURCE file (.prom scrape or "
              "metrics .jsonl) or --url", file=sys.stderr)
        return 2
    print(render_service_report(data, source=source))
    return 0


def _bench_report_baseline(args: argparse.Namespace,
                           report: Dict[str, object]):
    """Resolve ``--against``: a report file, or ``perf:<n>`` — the
    n-th history point for this report's benchmark (negatives count
    from the latest, so ``perf:-1`` is the most recent)."""
    if not args.against.startswith("perf:"):
        return benchjson.load_report(args.against)
    spec = args.against[len("perf:"):]
    try:
        index = int(spec)
    except ValueError:
        raise SystemExit(f"bench-report: malformed history point "
                         f"{args.against!r} (expected perf:<n>)")
    bench = report.get("benchmark", "?")
    points = [point for point in perf.load_history(args.ledger)
              if (point.get("benchmark") or perf.RUN_BENCHMARK) == bench]
    if not points:
        raise SystemExit(
            f"bench-report: no history points for benchmark "
            f"{bench!r} under {perf.history_path(args.ledger)}")
    try:
        point = points[index]
    except IndexError:
        raise SystemExit(
            f"bench-report: history point {index} out of range "
            f"({len(points)} point(s) for {bench!r})")
    return perf.point_as_report(point)


def _cmd_bench_report(args: argparse.Namespace) -> int:
    report = benchjson.load_report(args.report)
    if args.against:
        baseline = _bench_report_baseline(args, report)
        diff = ledger.diff_reports(baseline, report)
        if args.json:
            print(json.dumps(diff, indent=2, sort_keys=True))
        else:
            for note in diff["notes"]:
                print(f"note: {note}")
            for violation in diff["violations"]:
                print(f"REGRESSION: {violation}")
            print(f"{diff['benchmark']}: "
                  f"{'PASS' if diff['passed'] else 'FAIL'} "
                  f"({len(diff['cells'])} cells, "
                  f"{len(diff['violations'])} violations)")
        return 0 if diff["passed"] else 1
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
        return 0
    print(f"benchmark : {report.get('benchmark', '?')} "
          f"(scale {report.get('scale', '?')}, "
          f"rounds {report.get('rounds', '?')})")
    entries = report.get("entries", [])
    if not entries:
        print("(no entries)")
        return 0
    print(f"{'model':<12} {'method':<6} {'config':<16} "
          f"{'outcome':<22} {'iters':>5} {'peak':>8} {'seconds':>9}")
    for entry in entries:
        metrics = entry.get("metrics", {})
        print(f"{entry.get('model', '?'):<12} "
              f"{entry.get('method', '?'):<6} "
              f"{entry.get('config', '?'):<16} "
              f"{str(metrics.get('outcome')):<22} "
              f"{str(metrics.get('iterations', '-')):>5} "
              f"{str(metrics.get('peak_nodes', '-')):>8} "
              f"{float(metrics.get('seconds') or 0.0):>9.4f}")
    if report.get("derived"):
        print("derived:")
        for key in sorted(report["derived"]):
            print(f"  {key}: {report['derived'][key]}")
    return 0


def _cmd_perf(args: argparse.Namespace) -> int:
    cp_kwargs = {"min_points": args.min_points}
    if args.action == "record":
        if not args.targets:
            print("perf record: give at least one benchjson report "
                  "file or run:<ledger run id>", file=sys.stderr)
            return 2
        for target in args.targets:
            if target.startswith("run:"):
                run_id, doc = ledger.load_run(args.ledger,
                                              target[len("run:"):])
                entry = None
                for request in \
                        (Path(args.ledger) / "requests").glob("*.json") \
                        if (Path(args.ledger) / "requests").is_dir() \
                        else []:
                    candidate = json.loads(
                        request.read_text(encoding="utf-8"))
                    if candidate.get("run_id") == run_id:
                        entry = candidate
                        break
                req_hash = (entry or {}).get("request_hash")
                if req_hash is None:
                    # CLI-verified runs have no request-index entry;
                    # an earlier point for the same run still knows it.
                    for prior in perf.load_history(args.ledger):
                        if prior.get("run_id") == run_id \
                                and prior.get("request_hash"):
                            req_hash = prior["request_hash"]
                            break
                index, _point = perf.record_run_point(
                    args.ledger, doc, run_id=run_id,
                    request_hash=req_hash, source="cli")
            else:
                report = benchjson.load_report(target)
                index, _point = perf.record_report_point(
                    args.ledger, report, source=args.source)
            print(f"recorded history point #{index} from {target}")
        return 0
    points = perf.load_history(args.ledger)
    if args.action == "attribute":
        if len(args.targets) != 1:
            print("perf attribute: give exactly one cell label "
                  "(benchmark:model/method/config)", file=sys.stderr)
            return 2
        key = perf.parse_cell_label(args.targets[0])
        result = perf.attribute(points, key, metric=args.metric,
                                before=args.before, after=args.after,
                                **cp_kwargs)
        if args.json:
            print(json.dumps(result, indent=2, sort_keys=True,
                             default=str))
        else:
            print(perf.render_attribution(result))
        return 0
    if args.action == "report":
        text = perf.render_report(points, metric=args.metric,
                                  **cp_kwargs)
        if args.output:
            Path(args.output).write_text(text, encoding="utf-8")
            print(f"wrote {args.output}", file=sys.stderr)
        else:
            print(text)
        if args.fail_on_changepoint:
            rows = perf.trend_rows(points, metric=args.metric,
                                   **cp_kwargs)
            flagged = [row["label"] for row in rows
                       if row["status"] == "changepoint"]
            if flagged:
                print(f"changepoint(s) confirmed: "
                      f"{', '.join(flagged)}", file=sys.stderr)
                return 1
        return 0
    # trend
    rows = perf.trend_rows(points, metric=args.metric,
                           benchmark=args.benchmark, **cp_kwargs)
    if args.json:
        slim = [{k: v for k, v in row.items() if k != "series"}
                for row in rows]
        print(json.dumps(slim, indent=2, sort_keys=True, default=str))
    else:
        print(perf.render_trend(rows, metric=args.metric))
    if args.fail_on_changepoint \
            and any(row["status"] == "changepoint" for row in rows):
        return 1
    return 0


def _cmd_models(_args: argparse.Namespace) -> int:
    print("available models:")
    for name, help_text in _MODEL_HELP.items():
        print(f"  {name:<13} {help_text}")
    print("\nmethods: " + " ".join(METHODS))
    return 0


def _add_verify_parser(subparsers) -> None:
    parser = subparsers.add_parser(
        "verify", help="run one verification method on one model")
    parser.add_argument("--model", required=True, choices=sorted(_MODEL_HELP))
    parser.add_argument("--method", default="xici", choices=list(METHODS))
    parser.add_argument("--assisted", action="store_true",
                        help="add the model's assisting invariants")
    parser.add_argument("--bug", default=None,
                        help="inject a model-specific bug")
    parser.add_argument("--show-trace", action="store_true")
    # model parameters
    parser.add_argument("--depth", type=int, default=4)
    parser.add_argument("--width", type=int, default=8)
    parser.add_argument("--procs", type=int, default=3)
    parser.add_argument("--regs", type=int, default=2)
    parser.add_argument("--bits", type=int, default=1)
    parser.add_argument("--nodes", type=int, default=4)
    parser.add_argument("--phils", type=int, default=4)
    parser.add_argument("--caches", type=int, default=3)
    # engine knobs
    parser.add_argument("--kernel", default="auto",
                        choices=["auto", "dict", "array"],
                        help="BDD kernel backing the run: the flat "
                             "array kernel (array; what auto picks) or "
                             "the reference dict manager (dict) — "
                             "edge-identical results either way")
    parser.add_argument("--apply", default=None,
                        choices=["recursive", "levelized", "auto"],
                        help="apply path for the array kernel: "
                             "depth-first recursion (recursive), "
                             "breadth-first vectorized level sweeps "
                             "(levelized), or recursive with an "
                             "automatic switch once an operation "
                             "proves large (auto); default inherits "
                             "$REPRO_APPLY or recursive — results are "
                             "function-identical either way")
    parser.add_argument("--max-nodes", type=int, default=None)
    parser.add_argument("--time-limit", type=float, default=None)
    parser.add_argument("--grow-threshold", type=float,
                        default=GROW_THRESHOLD)
    parser.add_argument("--evaluator", default="greedy",
                        choices=["greedy", "matching"])
    parser.add_argument("--simplifier", default="restrict",
                        choices=["restrict", "constrain", "multiway"])
    parser.add_argument("--bounded-and", action="store_true")
    parser.add_argument("--no-pair-cache", action="store_true",
                        help="disable the persistent pair-product cache "
                             "(recompute every evaluation from scratch)")
    parser.add_argument("--reorder", default="none",
                        choices=["none", "sift", "auto"],
                        help="dynamic variable reordering: one sifting "
                             "pass before the run (sift) or sift "
                             "automatically when live nodes grow past "
                             "the trigger (auto)")
    parser.add_argument("--reorder-trigger", type=float, default=2.0,
                        metavar="GROWTH",
                        help="growth factor that fires an automatic "
                             "sift under --reorder auto (default 2.0)")
    parser.add_argument("--stats", action="store_true",
                        help="print BDD.stats() and cache counters "
                             "after the run")
    parser.add_argument("--back-image", default="compose",
                        choices=["compose", "relational"])
    parser.add_argument("--monotone", action="store_true",
                        help="one-directional termination test")
    parser.add_argument("--auto-decompose", action="store_true",
                        help="split monolithic property conjuncts "
                             "into independent factors first")
    # observability
    parser.add_argument("--trace", metavar="FILE", default=None,
                        help="stream structured engine events to FILE "
                             "as JSONL (one event per line)")
    parser.add_argument("--trace-summary", action="store_true",
                        help="print the aggregated trace summary "
                             "after the run")
    parser.add_argument("--metrics", metavar="FILE", default=None,
                        help="collect run metrics and write them to "
                             "FILE: JSONL timeline by default, the "
                             "Prometheus textfile format when FILE "
                             "ends in .prom")
    parser.add_argument("--metrics-summary", action="store_true",
                        help="print the one-shot metrics report "
                             "(counters, gauges, histograms) after "
                             "the run")
    parser.add_argument("--spans", metavar="FILE", default=None,
                        help="profile nested phase spans and write a "
                             "Chrome Trace Event JSON for Perfetto / "
                             "chrome://tracing (a .speedscope.json "
                             "suffix switches to the speedscope "
                             "flamegraph format)")
    parser.add_argument("--spans-summary", action="store_true",
                        help="print the per-span self-time rollup "
                             "table after the run")
    parser.add_argument("--heartbeat", type=float, metavar="SECS",
                        default=None,
                        help="print a live progress line to stderr "
                             "every SECS seconds while the run works")
    parser.add_argument("--heartbeat-stall", type=float, metavar="SECS",
                        default=None,
                        help="flag a stall when no safe point is "
                             "reached for SECS seconds (default: "
                             "max(5*heartbeat, 30))")
    parser.add_argument("--ledger", metavar="DIR", default=None,
                        help="archive the finished run (config, "
                             "result, metrics, span rollup) as a "
                             "content-addressed entry in DIR; implies "
                             "span profiling")
    parser.add_argument("--json", action="store_true",
                        help="print the machine-readable result "
                             "(VerificationResult.to_dict) and suppress "
                             "the human-readable report")
    parser.set_defaults(func=_cmd_verify)


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point for ``python -m repro``."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Implicitly conjoined BDDs (Hu/York/Dill, DAC 1994)")
    subparsers = parser.add_subparsers(dest="command", required=True)
    _add_verify_parser(subparsers)

    tables = subparsers.add_parser(
        "tables", help="regenerate the paper's tables")
    tables.add_argument("--table", default="all",
                        choices=sorted(_TABLES) + ["all"])
    tables.add_argument("--scale", default="quick",
                        choices=["quick", "paper"])
    tables.set_defaults(func=_cmd_tables)

    models = subparsers.add_parser("models", help="list available models")
    models.set_defaults(func=_cmd_models)

    serve = subparsers.add_parser(
        "serve", help="run the verification job server "
                      "(see docs/SERVICE.md)")
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default: 127.0.0.1; "
                            "configure tokens before binding wider)")
    serve.add_argument("--port", type=int, default=8080,
                       help="bind port (0 = ephemeral; default 8080)")
    serve.add_argument("--token", action="append", metavar="TOKEN",
                       help="accepted bearer token (repeatable; also "
                            "read comma-separated from "
                            "$REPRO_SERVE_TOKENS; none = open server)")
    serve.add_argument("--rate", type=float, default=None,
                       metavar="PER_SEC",
                       help="job submissions per second per token "
                            "(default: unlimited)")
    serve.add_argument("--burst", type=float, default=10.0,
                       help="rate-limit burst capacity (default 10)")
    serve.add_argument("--workers", type=int, default=2,
                       help="worker threads executing jobs (default 2)")
    serve.add_argument("--queue-limit", type=int, default=16,
                       help="max queued jobs before 429 backpressure "
                            "(default 16)")
    serve.add_argument("--ledger", metavar="DIR", default=None,
                       help="archive finished runs in DIR and serve "
                            "identical requests from it (the "
                            "request-hash cache)")
    serve.add_argument("--no-cache", action="store_true",
                       help="archive runs but never serve cached "
                            "results")
    serve.add_argument("--job-heartbeat", type=float, default=1.0,
                       metavar="SECS",
                       help="heartbeat cadence injected into jobs "
                            "that do not set one (default 1.0)")
    serve.add_argument("--job-ttl", type=float, default=None,
                       metavar="SECS",
                       help="retire finished jobs SECS seconds after "
                            "completion (default: keep until "
                            "--max-finished-jobs evicts them)")
    serve.add_argument("--max-finished-jobs", type=int, default=1024,
                       metavar="N",
                       help="retain at most N finished jobs, oldest "
                            "retired first (default 1024; 0 retains "
                            "none once read)")
    serve.add_argument("--access-log", metavar="FILE", default=None,
                       help="append structured JSONL access-log "
                            "records to FILE (default: stderr unless "
                            "--quiet)")
    serve.add_argument("--no-metrics", action="store_true",
                       help="disable server-lifetime metrics "
                            "(/v1/metrics answers 404)")
    serve.add_argument("--quiet", action="store_true",
                       help="suppress per-request access-log lines")
    serve.set_defaults(func=_cmd_serve)

    serve_report = subparsers.add_parser(
        "serve-report",
        help="render a markdown ops summary from job-server metrics "
             "(a saved /v1/metrics scrape, a metrics JSONL file, or "
             "a live server via --url)")
    serve_report.add_argument("source", nargs="?", default=None,
                              help="metrics source file: a Prometheus "
                                   "textfile (.prom) or metrics JSONL")
    serve_report.add_argument("--url", default=None, metavar="URL",
                              help="scrape a live server's /v1/metrics "
                                   "instead of reading a file")
    serve_report.add_argument("--token", default=None,
                              help="bearer token for --url")
    serve_report.set_defaults(func=_cmd_serve_report)

    bench_report = subparsers.add_parser(
        "bench-report",
        help="render a BENCH_*.json report, or gate it against a "
             "baseline")
    bench_report.add_argument("report", help="benchjson report file")
    bench_report.add_argument("--against", metavar="BASELINE",
                              default=None,
                              help="baseline to diff against (exit 1 "
                                   "on regressions): a report file, or "
                                   "perf:<n> — the n-th perf-history "
                                   "point for this benchmark "
                                   "(perf:-1 = latest)")
    bench_report.add_argument("--ledger", metavar="DIR",
                              default="repro-ledger",
                              help="ledger directory holding the perf "
                                   "history for --against perf:<n> "
                                   "(default: repro-ledger)")
    bench_report.add_argument("--json", action="store_true",
                              help="print the structured report/"
                                   "verdict instead of the table")
    bench_report.set_defaults(func=_cmd_bench_report)

    perf_parser = subparsers.add_parser(
        "perf",
        help="perf trajectory observatory: record history points, "
             "render trend tables, attribute regressions "
             "(see docs/OBSERVABILITY.md)")
    perf_parser.add_argument("action",
                             choices=["record", "trend", "attribute",
                                      "report"])
    perf_parser.add_argument("targets", nargs="*",
                             help="record: benchjson report files or "
                                  "run:<ledger run id>; attribute: one "
                                  "cell label "
                                  "(benchmark:model/method/config)")
    perf_parser.add_argument("--ledger", metavar="DIR",
                             default="repro-ledger",
                             help="ledger directory; the history store "
                                  "lives at DIR/perf/history.jsonl "
                                  "(default: repro-ledger)")
    perf_parser.add_argument("--metric", default="seconds",
                             help="cell metric to trend (default: "
                                  "seconds)")
    perf_parser.add_argument("--benchmark", default=None,
                             help="trend: restrict to one benchmark "
                                  "group")
    perf_parser.add_argument("--source", default="bench",
                             help="record: source tag for recorded "
                                  "points (default: bench)")
    perf_parser.add_argument("--before", type=int, default=None,
                             help="attribute: explicit series index of "
                                  "the baseline observation (default: "
                                  "last point before the changepoint)")
    perf_parser.add_argument("--after", type=int, default=None,
                             help="attribute: explicit series index of "
                                  "the regressed observation (default: "
                                  "first point after the changepoint)")
    perf_parser.add_argument("--min-points", type=int,
                             default=trend.MIN_TREND_POINTS,
                             help="observations before changepoint "
                                  "detection commits to a verdict "
                                  f"(default {trend.MIN_TREND_POINTS})")
    perf_parser.add_argument("--output", metavar="FILE", default=None,
                             help="report: write the markdown to FILE "
                                  "instead of stdout")
    perf_parser.add_argument("--fail-on-changepoint",
                             action="store_true",
                             help="trend/report: exit 1 when any cell "
                                  "has a confirmed changepoint")
    perf_parser.add_argument("--json", action="store_true",
                             help="print structured verdicts instead "
                                  "of markdown")
    perf_parser.set_defaults(func=_cmd_perf)

    ledger_parser = subparsers.add_parser(
        "ledger", help="list or show archived runs (see verify --ledger)")
    ledger_parser.add_argument("action", nargs="?", default="list",
                               choices=["list", "show"])
    ledger_parser.add_argument("run_id", nargs="?", default=None,
                               help="run id (or unique prefix) for show")
    ledger_parser.add_argument("--dir", default="repro-ledger",
                               help="ledger directory "
                                    "(default: repro-ledger)")
    ledger_parser.add_argument("--ids", action="store_true",
                               help="print bare run ids only")
    ledger_parser.set_defaults(func=_cmd_ledger)

    compare = subparsers.add_parser(
        "compare", help="diff two archived runs phase-by-phase "
                        "(exit 1 on regressions)")
    compare.add_argument("run_a", help="baseline run id (or prefix)")
    compare.add_argument("run_b", help="candidate run id (or prefix)")
    compare.add_argument("--dir", default="repro-ledger",
                         help="ledger directory (default: repro-ledger)")
    compare.add_argument("--json", action="store_true",
                         help="print the structured verdict instead "
                              "of markdown")
    compare.set_defaults(func=_cmd_compare)

    info = subparsers.add_parser(
        "info", help="structural report on one model")
    info.add_argument("--model", required=True,
                      choices=sorted(_MODEL_HELP))
    info.add_argument("--explore", action="store_true",
                      help="add a bounded explicit-state sweep")
    info.add_argument("--bug", default=None)
    for flag, default in (("--depth", 4), ("--width", 8), ("--procs", 3),
                          ("--regs", 2), ("--bits", 1), ("--nodes", 4),
                          ("--phils", 4), ("--caches", 3)):
        info.add_argument(flag, type=int, default=default)
    info.set_defaults(func=_cmd_info)

    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0].startswith("-") \
            and argv[0] not in ("-h", "--help"):
        # Legacy bare invocation (pre-subcommand CLI): treat
        # ``repro --model fifo ...`` as ``repro verify --model fifo``.
        print("repro: bare invocation is deprecated; "
              "use 'repro verify ...'", file=sys.stderr)
        argv = ["verify"] + list(argv)
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
