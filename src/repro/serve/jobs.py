"""Job lifecycle: bounded priority queue, worker pool, event logs.

A **job** wraps one :class:`~repro.serve.schema.VerifyRequest` through
the states::

    queued -> running -> done | failed | cancelled
         \\--------------------------------^  (cancel while queued)

Each job carries an append-only **event log** — heartbeat lines from
the run's :class:`~repro.obs.watchdog.Watchdog` (wired through
``Options.heartbeat_stream``) plus structured engine trace events —
that ``GET /v1/jobs/{id}/events`` streams as NDJSON.  The log is
bounded (:data:`MAX_EVENTS`); overflow drops the oldest middle and
counts what was dropped, so a pathological run cannot hold the server
hostage on memory.

**Cancellation is cooperative, via the engines' existing budget
hooks**: :meth:`Job.cancel` marks the job and moves the live manager's
wall-clock deadline into the past, so the next budget check inside any
BDD operation raises :class:`~repro.bdd.manager.BudgetExceededError`
and the engine unwinds through its normal budget path — a consistent
manager, a finished result, no killed threads.  The pipeline then
reports the job ``cancelled`` instead of recording the partial run.

The **queue** orders by ``(priority, arrival)`` — lower priority value
first, FIFO within a class — and is bounded: a full queue refuses new
work immediately (:class:`QueueFullError` → HTTP 429 + Retry-After)
rather than accepting unbounded backlog.  That explicit backpressure
is what lets clients implement honest retry policies.
"""

from __future__ import annotations

import heapq
import itertools
import threading
import time
import traceback
import uuid
from typing import Any, Callable, Dict, List, Optional

from ..trace import Tracer

__all__ = ["JobState", "Job", "JobEventLog", "JobEventTracer",
           "QueueFullError", "JobQueue", "WorkerPool", "MAX_EVENTS",
           "RetentionPolicy"]

#: Per-job event-log bound; beyond it the middle is dropped (the head
#: keeps the submit/start context, the tail keeps the ending).
MAX_EVENTS = 4096


class JobState:
    """String constants for the job lifecycle."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"

    TERMINAL = (DONE, FAILED, CANCELLED)


class JobEventLog:
    """Thread-safe append-only event log with a drop-middle bound.

    Also quacks like a write stream (``write``/``flush``) so it can be
    handed to the watchdog as ``Options.heartbeat_stream``: complete
    lines written to it become ``{"kind": "heartbeat", ...}`` events.
    """

    def __init__(self, max_events: int = MAX_EVENTS,
                 request_id: Optional[str] = None) -> None:
        self._events: List[Dict[str, Any]] = []
        self._dropped = 0
        self._max = max_events
        self._lock = threading.Lock()
        self._seq = 0
        self._pending_line = ""
        #: Stamped onto every event so a single NDJSON line is enough
        #: to correlate with the access log and the ledger sidecar.
        self.request_id = request_id

    def append(self, kind: str, **fields: Any) -> None:
        """Record one event (stamped with a sequence number and time)."""
        with self._lock:
            event = {"seq": self._seq, "ts": round(time.time(), 3),
                     "kind": kind}
            if self.request_id is not None:
                event["request_id"] = self.request_id
            event.update(fields)
            self._seq += 1
            self._events.append(event)
            if len(self._events) > self._max:
                # Keep the first quarter and the trailing rest; count
                # the cut so readers know the log is not gapless.
                keep_head = self._max // 4
                cut = len(self._events) - self._max
                del self._events[keep_head:keep_head + cut]
                self._dropped += cut

    def snapshot(self, since_seq: int = 0) -> List[Dict[str, Any]]:
        """Events with ``seq >= since_seq`` (a consistent copy)."""
        with self._lock:
            return [dict(e) for e in self._events
                    if e["seq"] >= since_seq]

    @property
    def dropped(self) -> int:
        return self._dropped

    @property
    def next_seq(self) -> int:
        with self._lock:
            return self._seq

    # -- write-stream protocol (the watchdog sink) ----------------------

    def write(self, text: str) -> int:
        """Accumulate text; each complete line becomes a heartbeat event."""
        self._pending_line += text
        while "\n" in self._pending_line:
            line, self._pending_line = self._pending_line.split("\n", 1)
            if line.strip():
                self.append("heartbeat", line=line)
        return len(text)

    def flush(self) -> None:
        """No-op (lines are committed on newline)."""


class JobEventTracer(Tracer):
    """A :class:`~repro.trace.Tracer` that records into the event log.

    Gives service clients the same structured engine events the JSONL
    tracer streams to disk, one ``{"kind": "trace", "event": ...}``
    per emit.  Observational only, like every tracer.
    """

    enabled = True

    def __init__(self, log: JobEventLog) -> None:
        self._log = log

    def emit(self, event: str, **fields: Any) -> None:
        self._log.append("trace", event=event, **fields)


class Job:
    """One queued/running/finished verification request."""

    def __init__(self, request: Any, priority: int = 0,
                 request_id: Optional[str] = None) -> None:
        self.id = uuid.uuid4().hex[:12]
        self.request = request
        self.request_hash = request.request_hash()
        self.priority = priority
        self.state = JobState.QUEUED
        #: The correlation id of the submitting HTTP request (inbound
        #: ``X-Request-Id`` or server-generated); stamped on every
        #: event line and archived with the run.
        self.request_id = request_id or uuid.uuid4().hex[:12]
        self.events = JobEventLog(request_id=self.request_id)
        #: Phase rollup written by the pipeline (queue_wait / build /
        #: run / archive seconds) — service wall-clock, never part of
        #: the content-addressed run document.
        self.phases: Dict[str, float] = {}
        self.created_at = time.time()
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        self.cached = False
        self.run_id: Optional[str] = None
        self.result: Optional[Dict[str, Any]] = None
        self.error: Optional[Dict[str, Any]] = None
        self._lock = threading.Lock()
        self._cancel_requested = False
        #: The live manager while the engine runs (pipeline-set); the
        #: cancellation hook pokes its deadline.
        self._manager: Any = None

    # -- state transitions (pipeline/worker side) -----------------------

    def mark_running(self) -> None:
        with self._lock:
            self.state = JobState.RUNNING
            self.started_at = time.time()
        self.events.append("state", state=JobState.RUNNING)

    def finish(self, state: str, **fields: Any) -> None:
        with self._lock:
            self.state = state
            self.finished_at = time.time()
        self.events.append("state", state=state, **fields)

    def attach_manager(self, manager: Any) -> bool:
        """Expose the live manager to the cancel hook.

        Returns False when cancellation already came in — the pipeline
        then aborts before starting the engine (the queued-job race:
        a DELETE landing between build and run must still win).
        """
        with self._lock:
            self._manager = manager
            if self._cancel_requested:
                self._poke_budget_locked()
                return False
            return True

    def detach_manager(self) -> None:
        with self._lock:
            self._manager = None

    def record_phase(self, name: str, seconds: float) -> None:
        """Record one service-side phase duration (pipeline-set)."""
        with self._lock:
            self.phases[name] = round(float(seconds), 6)

    # -- cancellation (HTTP side) ---------------------------------------

    @property
    def cancel_requested(self) -> bool:
        return self._cancel_requested

    def cancel(self) -> bool:
        """Request cooperative cancellation; True if newly requested.

        A queued job is simply marked (the worker skips it); a running
        job gets its manager's deadline moved into the past so the
        engine's very next budget check raises and unwinds cleanly.
        """
        with self._lock:
            if self.state in JobState.TERMINAL or self._cancel_requested:
                return False
            self._cancel_requested = True
            self._poke_budget_locked()
        self.events.append("cancel_requested")
        return True

    def _poke_budget_locked(self) -> None:
        manager = self._manager
        if manager is not None:
            # The engines' existing budget hook: any BDD operation
            # checks the deadline within a few thousand node visits.
            manager._deadline = 0.0
            manager._time_check_countdown = 0

    # -- reading (HTTP side) --------------------------------------------

    def snapshot(self, include_result: bool = True) -> Dict[str, Any]:
        """The public JSON document of this job."""
        with self._lock:
            doc: Dict[str, Any] = {
                "id": self.id,
                "state": self.state,
                "request_id": self.request_id,
                "request_hash": self.request_hash,
                "priority": self.priority,
                "label": self.request.label,
                "model": self.request.model,
                "method": self.request.method,
                "created_at": round(self.created_at, 3),
                "started_at": (round(self.started_at, 3)
                               if self.started_at else None),
                "finished_at": (round(self.finished_at, 3)
                                if self.finished_at else None),
                "queue_wait_seconds": (
                    round(self.started_at - self.created_at, 6)
                    if self.started_at else None),
                "run_seconds": (
                    round(self.finished_at - self.started_at, 6)
                    if self.started_at and self.finished_at else None),
                "cached": self.cached,
                "run_id": self.run_id,
                "cancel_requested": self._cancel_requested,
                "events": self.events.next_seq,
                "events_dropped": self.events.dropped,
            }
            if self.phases:
                doc["phases"] = dict(self.phases)
            if self.error is not None:
                doc["error"] = dict(self.error)
            if include_result and self.result is not None:
                doc["result"] = self.result
            return doc

    @property
    def terminal(self) -> bool:
        return self.state in JobState.TERMINAL


class RetentionPolicy:
    """Which terminal jobs a long-running server should forget.

    Two independent bounds, both optional:

    * ``max_finished`` — keep at most this many terminal jobs;
      the oldest (by arrival) are retired first.  ``None`` disables
      the count bound.
    * ``ttl`` — retire a terminal job once ``now - finished_at``
      reaches this many seconds.  ``None`` disables the age bound.

    Queued and running jobs are never retired — retention trims
    completed history, it is not admission control (the bounded queue
    is).  The policy is a pure decision function over a job list, so
    the owner (the service) keeps locking and storage to itself.
    """

    def __init__(self, max_finished: Optional[int] = 1024,
                 ttl: Optional[float] = None) -> None:
        if max_finished is not None and max_finished < 0:
            raise ValueError("max_finished must be >= 0 (or None)")
        if ttl is not None and ttl <= 0:
            raise ValueError("ttl must be positive (or None)")
        self.max_finished = max_finished
        self.ttl = ttl

    def retire(self, jobs: List[Job],
               now: Optional[float] = None) -> List[Job]:
        """The jobs (given in arrival order) that should be dropped.

        TTL expiry is applied first, then the count bound on the
        survivors — so a tight TTL can keep a server well under
        ``max_finished``, and a burst of fresh finishes still trims
        to the count bound even when nothing has aged out yet.
        """
        if now is None:
            now = time.time()
        aged: List[Job] = []
        kept: List[Job] = []
        for job in jobs:
            if not job.terminal:
                continue
            if (self.ttl is not None and job.finished_at is not None
                    and now - job.finished_at >= self.ttl):
                aged.append(job)
            else:
                kept.append(job)
        if self.max_finished is not None \
                and len(kept) > self.max_finished:
            aged.extend(kept[:len(kept) - self.max_finished])
        return aged


class QueueFullError(Exception):
    """The bounded queue refused a submission (HTTP 429)."""

    def __init__(self, limit: int) -> None:
        super().__init__(f"job queue full ({limit} pending)")
        self.limit = limit


class JobQueue:
    """Bounded, priority-ordered (then FIFO) job queue."""

    def __init__(self, limit: int = 64) -> None:
        if limit < 1:
            raise ValueError("queue limit must be at least 1")
        self.limit = limit
        self._heap: List[Any] = []
        self._counter = itertools.count()
        self._lock = threading.Lock()
        self._available = threading.Condition(self._lock)
        self._closed = False

    def put(self, job: Job) -> None:
        """Enqueue or raise :class:`QueueFullError` immediately."""
        with self._lock:
            if self._closed:
                raise RuntimeError("queue is closed")
            if len(self._heap) >= self.limit:
                raise QueueFullError(self.limit)
            heapq.heappush(self._heap,
                           (job.priority, next(self._counter), job))
            self._available.notify()

    def get(self, timeout: Optional[float] = None) -> Optional[Job]:
        """Dequeue the next job; None on timeout or after close."""
        with self._lock:
            while not self._heap and not self._closed:
                if not self._available.wait(timeout):
                    return None
            if not self._heap:
                return None
            _, _, job = heapq.heappop(self._heap)
            return job

    def close(self) -> None:
        """Wake all waiters; subsequent ``get`` drains then yields None."""
        with self._lock:
            self._closed = True
            self._available.notify_all()

    def __len__(self) -> int:
        with self._lock:
            return len(self._heap)

    def oldest_created_at(self) -> Optional[float]:
        """Arrival time of the longest-queued job (the age gauge)."""
        with self._lock:
            if not self._heap:
                return None
            return min(entry[2].created_at for entry in self._heap)


class WorkerPool:
    """N daemon threads draining the queue through one executor.

    ``executor(job)`` is the pipeline's run function; it owns all
    job-state transitions for the jobs it executes.  The pool only
    guarantees that an exception escaping the executor marks the job
    ``failed`` (with the traceback in the job's error document)
    instead of killing the worker thread.
    """

    def __init__(self, queue: JobQueue,
                 executor: Callable[[Job], None],
                 workers: int = 2,
                 on_failure: Optional[Callable[[Job], None]] = None
                 ) -> None:
        if workers < 1:
            raise ValueError("need at least one worker")
        self._queue = queue
        self._executor = executor
        #: Called (outside any pool lock) after a job the executor let
        #: escape is marked failed — the service counts these.
        self._on_failure = on_failure
        self._busy = 0
        self._busy_lock = threading.Lock()
        self._threads = [
            threading.Thread(target=self._loop,
                             name=f"repro-serve-worker-{index}",
                             daemon=True)
            for index in range(workers)]
        self._started = False

    def start(self) -> None:
        if self._started:
            return
        self._started = True
        for thread in self._threads:
            thread.start()

    def stop(self, timeout: float = 5.0) -> None:
        """Close the queue and join the workers."""
        self._queue.close()
        for thread in self._threads:
            thread.join(timeout=timeout)

    @property
    def alive(self) -> int:
        """Number of worker threads currently alive."""
        return sum(thread.is_alive() for thread in self._threads)

    @property
    def busy(self) -> int:
        """Number of workers currently inside the executor."""
        with self._busy_lock:
            return self._busy

    def _loop(self) -> None:
        while True:
            job = self._queue.get()
            if job is None:
                return
            if job.cancel_requested:
                job.finish(JobState.CANCELLED, where="queued")
                continue
            with self._busy_lock:
                self._busy += 1
            try:
                self._executor(job)
            except Exception as error:  # noqa: BLE001 - worker survives
                job.error = {"code": "internal",
                             "message": str(error),
                             "traceback": traceback.format_exc()}
                job.finish(JobState.FAILED, error=str(error))
                if self._on_failure is not None:
                    self._on_failure(job)
            finally:
                with self._busy_lock:
                    self._busy -= 1
