"""Bearer-token authentication for the job server.

Deliberately minimal: a static set of tokens (CLI ``--token``,
repeatable, or the ``REPRO_SERVE_TOKENS`` env var,
comma-separated), checked with a constant-time comparison.  The
authenticated *principal* — the token itself — is also the rate
limiter's bucket key, so each credential gets its own budget.

With no tokens configured the server runs **open** (development
mode): every request authenticates as :data:`ANONYMOUS`.  That is a
deliberate default for localhost tinkering; deployment notes in
docs/SERVICE.md say to always configure tokens when binding anything
but loopback.
"""

from __future__ import annotations

import hmac
import os
from typing import Iterable, Optional

__all__ = ["ANONYMOUS", "TOKENS_ENV", "Authenticator", "tokens_from_env"]

#: Principal assigned to every request when auth is disabled.
ANONYMOUS = "anonymous"

#: Environment variable holding comma-separated accepted tokens.
TOKENS_ENV = "REPRO_SERVE_TOKENS"


def tokens_from_env(environ=os.environ) -> list:
    """Accepted tokens from :data:`TOKENS_ENV` (empty list if unset)."""
    raw = environ.get(TOKENS_ENV, "")
    return [token for token in (part.strip() for part in raw.split(","))
            if token]


class Authenticator:
    """Validate ``Authorization: Bearer <token>`` headers.

    :meth:`authenticate` returns the principal (the matching token,
    or :data:`ANONYMOUS` when no tokens are configured) or ``None``
    for a missing/malformed/unknown credential — the HTTP layer maps
    ``None`` to 401.
    """

    def __init__(self, tokens: Iterable[str] = ()) -> None:
        self._tokens = tuple(token for token in tokens if token)

    @property
    def enabled(self) -> bool:
        """Whether any token is configured (False = open server)."""
        return bool(self._tokens)

    def authenticate(self, authorization: Optional[str]) -> Optional[str]:
        """Resolve one Authorization header value to a principal."""
        if not self.enabled:
            return ANONYMOUS
        if not authorization:
            return None
        scheme, _, credential = authorization.partition(" ")
        if scheme.lower() != "bearer":
            return None
        credential = credential.strip()
        if not credential:
            return None
        for token in self._tokens:
            # hmac.compare_digest: no early-exit timing channel on the
            # credential bytes.
            if hmac.compare_digest(credential, token):
                return token
        return None
