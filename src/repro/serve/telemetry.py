"""Service-layer telemetry: request metrics, access log, ops report.

The job server reuses the :mod:`repro.obs` stack instead of inventing a
parallel one — one server-lifetime
:class:`~repro.obs.registry.MetricsRegistry` collects everything the
transport and the pipeline emit, and the existing Prometheus exporter
(:func:`repro.obs.exporters.to_prometheus`) renders ``GET /v1/metrics``.
This module is the thin service-specific layer on top:

* :class:`ServiceMetrics` — a thread-safe facade over one registry.
  The engine-side registry is deliberately lock-free (one run, one
  thread); the server is many HTTP handler threads plus the worker
  pool, so every mutation here goes through one lock.  Disabled
  (``repro serve --no-metrics``) it is all no-ops, mirroring the
  :class:`~repro.obs.registry.NullRegistry` contract — an unmetered
  server is byte-identical in every job-visible document.
* :func:`route_key` — the fixed route vocabulary (``submit``,
  ``get_job``, ``events`` ...) that keys the per-endpoint request
  counters (``http_requests_<route>``) and latency histograms
  (``http_request_seconds_<route>``, on the shared
  :data:`~repro.obs.registry.TIME_BUCKETS_S` edges so two servers —
  or two commits — are always bucket-compatible).
* :class:`AccessLog` — the structured JSONL access log
  (``--access-log FILE``), one JSON object per request with the
  propagated ``request_id``; replaces the old unstructured
  ``log_message`` stderr line.
* :func:`render_service_report` — the ``repro serve-report`` markdown
  ops summary (throughput, per-endpoint p50/p95/p99, cache hit rate,
  saturation) over a scraped ``/v1/metrics`` textfile or a metrics
  JSONL summary.
"""

from __future__ import annotations

import json
import sys
import threading
from typing import Any, Dict, List, Optional, TextIO

from ..obs.exporters import to_prometheus
from ..obs.registry import Histogram, MetricsRegistry

__all__ = ["ServiceMetrics", "AccessLog", "route_key", "ROUTE_KEYS",
           "render_service_report"]

#: The fixed route vocabulary; every request maps onto exactly one key
#: (unknown paths land in ``other``), so per-endpoint series never grow
#: unboundedly with client-controlled strings.
ROUTE_KEYS = ("submit", "list_jobs", "get_job", "events", "cancel",
              "healthz", "stats", "metrics", "models", "methods",
              "other")


def route_key(method: str, path: str) -> str:
    """Map one (HTTP verb, normalized path) onto the route vocabulary."""
    if path == "/v1/jobs":
        return "submit" if method == "POST" else "list_jobs"
    if path.startswith("/v1/jobs/"):
        if path.endswith("/events"):
            return "events"
        return "cancel" if method == "DELETE" else "get_job"
    fixed = {"/v1/healthz": "healthz", "/v1/stats": "stats",
             "/v1/metrics": "metrics", "/v1/models": "models",
             "/v1/methods": "methods"}
    return fixed.get(path, "other")


class ServiceMetrics:
    """Thread-safe server-lifetime metrics facade.

    Wraps one :class:`MetricsRegistry` behind a lock (HTTP handler
    threads, worker threads, and scrapes all mutate concurrently).
    Disabled instances keep the full interface as no-ops so call sites
    never branch — the same null-object discipline as the engine-side
    :data:`~repro.obs.registry.NULL_REGISTRY`.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = bool(enabled)
        self.registry: Optional[MetricsRegistry] = \
            MetricsRegistry() if self.enabled else None
        self._lock = threading.Lock()

    # -- mutators (all no-ops when disabled) ----------------------------

    def inc(self, name: str, value: int = 1) -> None:
        if not self.enabled:
            return
        with self._lock:
            self.registry.inc(name, value)

    def gauge(self, name: str, value: float) -> None:
        if not self.enabled:
            return
        with self._lock:
            self.registry.gauge(name, value)

    def observe_time(self, name: str, seconds: float) -> None:
        if not self.enabled:
            return
        with self._lock:
            self.registry.observe_time(name, seconds)

    def observe_request(self, route: str, status: int,
                        seconds: float) -> None:
        """Account one finished HTTP request: counter + latency."""
        if not self.enabled:
            return
        with self._lock:
            self.registry.inc(f"http_requests_{route}")
            self.registry.inc(f"http_status_{status // 100}xx")
            self.registry.observe_time(f"http_request_seconds_{route}",
                                       seconds)

    # -- views ----------------------------------------------------------

    def counter(self, name: str) -> int:
        """Current value of one counter (0 when unseen or disabled)."""
        if not self.enabled:
            return 0
        with self._lock:
            return self.registry.counters.get(name, 0)

    def snapshot(self) -> Optional[Dict[str, Any]]:
        """The registry snapshot dict, or None when disabled."""
        if not self.enabled:
            return None
        with self._lock:
            return self.registry.snapshot()

    def to_prometheus(self) -> str:
        """The Prometheus text exposition of the registry."""
        if not self.enabled:
            return ""
        with self._lock:
            return to_prometheus(self.registry)


class AccessLog:
    """Structured JSONL access log: one JSON object per request.

    Each record carries at least ``ts``, ``request_id``, ``method``,
    ``path``, ``route``, ``status``, and ``seconds``; the handler adds
    context like ``job_id`` on submits.  Lines are written atomically
    under a lock and flushed per record, so a tailing collector never
    sees a torn line.  A disabled log (no sink) is all no-ops.
    """

    def __init__(self, stream: Optional[TextIO] = None,
                 close_stream: bool = False) -> None:
        self._stream = stream
        self._close_stream = close_stream
        self._lock = threading.Lock()

    @classmethod
    def open(cls, path: Optional[str] = None,
             to_stderr: bool = False) -> "AccessLog":
        """The configured sink: FILE (append) > stderr > disabled."""
        if path:
            return cls(open(path, "a", encoding="utf-8"),
                       close_stream=True)
        if to_stderr:
            return cls(sys.stderr)
        return cls(None)

    @property
    def enabled(self) -> bool:
        return self._stream is not None

    def log(self, record: Dict[str, Any]) -> None:
        if self._stream is None:
            return
        line = json.dumps(record, sort_keys=True, default=str) + "\n"
        with self._lock:
            try:
                self._stream.write(line)
                self._stream.flush()
            except ValueError:
                pass  # sink closed mid-shutdown; drop the line

    def close(self) -> None:
        if self._close_stream and self._stream is not None:
            self._stream.close()
        self._stream = None


# ----------------------------------------------------------------------
# The ops report (``repro serve-report``)
# ----------------------------------------------------------------------

def _hist(histograms: Dict[str, Any], name: str) -> Optional[Histogram]:
    data = histograms.get(name)
    if not data:
        return None
    return Histogram.from_dict(data)


def _fmt_seconds(value: Optional[float]) -> str:
    if value is None:
        return "-"
    if value >= 1.0:
        return f"{value:.2f}s"
    return f"{value * 1e3:.1f}ms"


def _pct(part: float, whole: float) -> str:
    if whole <= 0:
        return "-"
    return f"{100.0 * part / whole:.1f}%"


def render_service_report(data: Dict[str, Any],
                          source: str = "") -> str:
    """Markdown ops summary of one scraped server metrics dict.

    ``data`` is the common counters/gauges/histograms shape produced by
    :meth:`ServiceMetrics.snapshot`,
    :func:`repro.obs.exporters.parse_prometheus` (a ``/v1/metrics``
    scrape), or the summary line of a metrics JSONL file — throughput,
    per-endpoint latency quantiles, cache effectiveness, saturation.
    """
    counters = data.get("counters") or {}
    gauges = data.get("gauges") or {}
    histograms = data.get("histograms") or {}

    lines: List[str] = ["# repro serve report"]
    if source:
        lines.append(f"*source: {source}*")
    lines.append("")

    requests = {route: counters[f"http_requests_{route}"]
                for route in ROUTE_KEYS
                if f"http_requests_{route}" in counters}
    total = sum(requests.values())
    uptime = gauges.get("uptime_seconds")
    throughput = (f"{total / uptime:.2f} req/s"
                  if uptime else "- req/s")
    lines.append(f"- **requests**: {total} total, {throughput} "
                 f"(uptime {_fmt_seconds(uptime)})")

    hits = counters.get("ledger_cache_hits", 0)
    misses = counters.get("ledger_cache_misses", 0)
    lines.append(f"- **cache**: {hits} hits / {misses} misses "
                 f"(hit rate {_pct(hits, hits + misses)})")

    executed = counters.get("jobs_executed", 0)
    failed = counters.get("jobs_failed", 0)
    cancelled = counters.get("jobs_cancelled", 0)
    lines.append(f"- **jobs**: {executed} executed, {failed} failed, "
                 f"{cancelled} cancelled")

    refused = (f"{counters.get('rate_limit_rejected', 0)} rate-limited, "
               f"{counters.get('queue_full_rejections', 0)} queue-full, "
               f"{counters.get('auth_failures', 0)} auth failures")
    lines.append(f"- **refusals**: {refused}")

    depth = gauges.get("queue_depth")
    limit = gauges.get("queue_limit")
    busy = gauges.get("workers_busy")
    workers = gauges.get("workers_alive")
    oldest = gauges.get("queue_oldest_age_seconds")
    if depth is not None or busy is not None:
        queue_part = (f"queue {int(depth or 0)}/{int(limit or 0)} "
                      f"({_pct(depth or 0, limit or 0)})")
        worker_part = f"workers {int(busy or 0)}/{int(workers or 0)} busy"
        age_part = f"oldest queued {_fmt_seconds(oldest)}"
        lines.append(f"- **saturation**: {queue_part}, {worker_part}, "
                     f"{age_part}")

    if requests:
        lines.append("")
        lines.append("## endpoints")
        lines.append("")
        lines.append("| endpoint | requests | p50 | p95 | p99 | mean |")
        lines.append("|---|---:|---:|---:|---:|---:|")
        for route in ROUTE_KEYS:
            if route not in requests:
                continue
            hist = _hist(histograms, f"http_request_seconds_{route}")
            if hist is not None and hist.count:
                p50 = _fmt_seconds(hist.quantile(0.5))
                p95 = _fmt_seconds(hist.quantile(0.95))
                p99 = _fmt_seconds(hist.quantile(0.99))
                mean = _fmt_seconds(hist.mean)
            else:
                p50 = p95 = p99 = mean = "-"
            lines.append(f"| {route} | {requests[route]} | {p50} "
                         f"| {p95} | {p99} | {mean} |")

    queue_wait = _hist(histograms, "job_queue_wait_seconds")
    run = _hist(histograms, "job_run_seconds")
    if queue_wait is not None or run is not None:
        lines.append("")
        lines.append("## job phases")
        lines.append("")
        lines.append("| phase | jobs | p50 | p95 | mean |")
        lines.append("|---|---:|---:|---:|---:|")
        for label, hist in (("queue wait", queue_wait), ("run", run)):
            if hist is None or not hist.count:
                continue
            lines.append(
                f"| {label} | {hist.count} "
                f"| {_fmt_seconds(hist.quantile(0.5))} "
                f"| {_fmt_seconds(hist.quantile(0.95))} "
                f"| {_fmt_seconds(hist.mean)} |")
    return "\n".join(lines)
