"""The serializable request/response schema of the job server.

One request document describes one verification run, faithfully
mirroring the public API (``repro.verify(build_model(...), method,
Options(...))``)::

    {
      "schema_version": 1,
      "model": "fifo",                  # a registry name (repro.MODELS)
      "params": {"depth": 4, "width": 8},
      "bug": null,                      # model bug label, or null
      "method": "xici",                 # one of repro.METHODS
      "assisted": false,                # add assisting invariants
      "options": { ... },              # Options.to_dict() subset
      "priority": 0,                    # lower runs first; FIFO within
      "label": "nightly-fifo"           # free-form, for humans
    }

Validation here is strict and *structured*: every problem raises a
:class:`RequestError` carrying a machine-readable error code and the
offending field, which the HTTP layer turns into a 400 JSON body —
a malformed request must never surface as a traceback.  The canonical
identity of a request is :meth:`VerifyRequest.request_hash`, the
sha256 shared with the run ledger's request index (same hash in
``POST /v1/jobs`` responses, job documents, and
``<ledger>/requests/``), so "has this exact run been done before?"
is one file probe.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional

from ..core import METHODS
from ..core.options import Options, request_hash
from ..models import MODELS

__all__ = ["REQUEST_SCHEMA_VERSION", "RequestError", "VerifyRequest",
           "parse_request", "valid_request_id", "MAX_REQUEST_ID_LEN"]

#: Version of the request document shape; echoed in responses and
#: checked (when present) on ingest.
REQUEST_SCHEMA_VERSION = 1

#: Top-level request keys the parser accepts.
_REQUEST_KEYS = ("schema_version", "model", "params", "bug", "method",
                 "assisted", "options", "priority", "label",
                 "request_id")

#: Characters allowed in a client-supplied request id (header or body);
#: anything else is rejected rather than laundered into logs/filenames.
_REQUEST_ID_CHARS = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789._-")

#: Longest accepted client-supplied request id.
MAX_REQUEST_ID_LEN = 128


def valid_request_id(value: Any) -> bool:
    """True when ``value`` is a usable correlation id (non-empty str,
    bounded length, safe charset)."""
    return (isinstance(value, str) and 0 < len(value) <= MAX_REQUEST_ID_LEN
            and set(value) <= _REQUEST_ID_CHARS)


class RequestError(ValueError):
    """A malformed verification request (HTTP 400).

    ``code`` is a stable machine-readable slug (``unknown_model``,
    ``bad_options`` ...); ``field`` names the offending part of the
    document when one can be singled out.
    """

    def __init__(self, code: str, message: str,
                 field: Optional[str] = None) -> None:
        super().__init__(message)
        self.code = code
        self.field = field

    def to_dict(self) -> Dict[str, Any]:
        """The JSON error body the HTTP layer sends back."""
        error: Dict[str, Any] = {"code": self.code, "message": str(self)}
        if self.field is not None:
            error["field"] = self.field
        return error


@dataclass
class VerifyRequest:
    """One parsed, validated verification request."""

    model: str
    method: str = "xici"
    params: Dict[str, Any] = field(default_factory=dict)
    bug: Optional[str] = None
    assisted: bool = False
    options: Options = field(default_factory=Options)
    priority: int = 0
    label: str = ""
    #: Optional client-chosen correlation id; excluded from
    #: :meth:`request_hash` (two identical runs with different ids
    #: must still collide in the cache).
    request_id: Optional[str] = None

    def request_hash(self) -> str:
        """The canonical request identity (ledger cache key)."""
        return request_hash(self.model, self.method, params=self.params,
                            bug=self.bug, assisted=self.assisted,
                            options=self.options)

    def to_dict(self) -> Dict[str, Any]:
        """The canonical wire form; ``parse_request`` round-trips it."""
        doc = {
            "schema_version": REQUEST_SCHEMA_VERSION,
            "model": self.model,
            "params": dict(self.params),
            "bug": self.bug,
            "method": self.method,
            "assisted": self.assisted,
            "options": self.options.to_dict(),
            "priority": self.priority,
            "label": self.label,
        }
        if self.request_id is not None:
            doc["request_id"] = self.request_id
        return doc


def _require(condition: bool, code: str, message: str,
             field_name: Optional[str] = None) -> None:
    if not condition:
        raise RequestError(code, message, field_name)


def parse_request(data: Any) -> VerifyRequest:
    """Validate one raw JSON document into a :class:`VerifyRequest`.

    Raises :class:`RequestError` (never anything else) on any problem:
    unknown top-level keys, unknown model/method, parameters the model
    does not take, non-integer parameter values, and anything
    :meth:`Options.from_dict` rejects.
    """
    _require(isinstance(data, Mapping), "bad_request",
             f"request must be a JSON object, got "
             f"{type(data).__name__}")
    unknown = sorted(set(data) - set(_REQUEST_KEYS))
    _require(not unknown, "unknown_field",
             f"unknown request field(s) {unknown}; valid: "
             f"{sorted(_REQUEST_KEYS)}", unknown[0] if unknown else None)
    version = data.get("schema_version", REQUEST_SCHEMA_VERSION)
    _require(version == REQUEST_SCHEMA_VERSION, "bad_schema_version",
             f"request schema_version {version!r} != "
             f"{REQUEST_SCHEMA_VERSION} (this server)", "schema_version")

    model = data.get("model")
    _require(isinstance(model, str) and bool(model), "bad_model",
             "request needs a 'model' string", "model")
    _require(model in MODELS, "unknown_model",
             f"unknown model {model!r}; available: {sorted(MODELS)}",
             "model")
    spec = MODELS[model]

    method = data.get("method", "xici")
    _require(isinstance(method, str), "bad_method",
             "'method' must be a string", "method")
    _require(method in METHODS, "unknown_method",
             f"unknown method {method!r}; available: {list(METHODS)}",
             "method")

    params = data.get("params") or {}
    _require(isinstance(params, Mapping), "bad_params",
             "'params' must be a JSON object", "params")
    bad_params = sorted(set(params) - set(spec.params))
    _require(not bad_params, "unknown_param",
             f"model {model!r} takes no parameter(s) {bad_params}; "
             f"valid: {sorted(spec.params)}",
             bad_params[0] if bad_params else None)
    for name, value in params.items():
        _require(isinstance(value, int) and not isinstance(value, bool),
                 "bad_param",
                 f"parameter {name!r} must be an integer, got "
                 f"{type(value).__name__}", name)

    bug = data.get("bug")
    _require(bug is None or isinstance(bug, str), "bad_bug",
             "'bug' must be a string or null", "bug")

    assisted = data.get("assisted", False)
    _require(isinstance(assisted, bool), "bad_assisted",
             "'assisted' must be a boolean", "assisted")

    try:
        options = Options.from_dict(data.get("options") or {})
    except ValueError as error:
        raise RequestError("bad_options", str(error), "options") from None

    priority = data.get("priority", 0)
    _require(isinstance(priority, int) and not isinstance(priority, bool),
             "bad_priority", "'priority' must be an integer", "priority")

    label = data.get("label", "")
    _require(isinstance(label, str), "bad_label",
             "'label' must be a string", "label")

    request_id = data.get("request_id")
    _require(request_id is None or valid_request_id(request_id),
             "bad_request_id",
             f"'request_id' must be a non-empty string of at most "
             f"{MAX_REQUEST_ID_LEN} characters from [A-Za-z0-9._-]",
             "request_id")

    return VerifyRequest(model=model, method=method,
                         params=dict(params), bug=bug,
                         assisted=assisted, options=options,
                         priority=priority, label=label,
                         request_id=request_id)
