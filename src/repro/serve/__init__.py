"""Verification-as-a-service: async job server over the public API.

The package mirrors a production service's layering:

* :mod:`repro.serve.schema` — JSON request schema + strict parsing.
* :mod:`repro.serve.auth` — bearer-token authentication.
* :mod:`repro.serve.rate_limiter` — per-principal token buckets.
* :mod:`repro.serve.jobs` — job lifecycle, bounded priority queue,
  worker pool, event logs.
* :mod:`repro.serve.pipeline` — cache probe -> build -> run -> ledger.
* :mod:`repro.serve.telemetry` — server-lifetime metrics, structured
  access log, and the ``repro serve-report`` ops summary.
* :mod:`repro.serve.api` — the stdlib HTTP transport.

Start one from Python::

    from repro.serve import ServerConfig, VerificationServer
    server = VerificationServer(ServerConfig(port=0, ledger_dir="runs"))
    server.start()          # background threads; server.url is live
    ...
    server.stop()

or from the CLI: ``repro serve --port 8080 --ledger runs/``.  See
docs/SERVICE.md for the endpoint reference and deployment notes.
"""

from .api import ServerConfig, ServiceError, VerificationServer, \
    VerificationService
from .auth import ANONYMOUS, Authenticator, TOKENS_ENV, tokens_from_env
from .jobs import Job, JobEventLog, JobQueue, JobState, QueueFullError, \
    RetentionPolicy, WorkerPool
from .pipeline import VerificationPipeline
from .rate_limiter import RateLimiter, TokenBucket
from .schema import REQUEST_SCHEMA_VERSION, RequestError, VerifyRequest, \
    parse_request, valid_request_id
from .telemetry import AccessLog, ServiceMetrics, render_service_report, \
    route_key

__all__ = [
    "ServerConfig",
    "ServiceError",
    "VerificationServer",
    "VerificationService",
    "ANONYMOUS",
    "TOKENS_ENV",
    "Authenticator",
    "tokens_from_env",
    "Job",
    "JobEventLog",
    "JobQueue",
    "JobState",
    "QueueFullError",
    "RetentionPolicy",
    "WorkerPool",
    "VerificationPipeline",
    "RateLimiter",
    "TokenBucket",
    "REQUEST_SCHEMA_VERSION",
    "RequestError",
    "VerifyRequest",
    "parse_request",
    "valid_request_id",
    "AccessLog",
    "ServiceMetrics",
    "render_service_report",
    "route_key",
]
