"""Per-principal token-bucket rate limiting for the job server.

The classic shape: each principal owns a bucket of ``burst`` tokens
refilled continuously at ``rate`` tokens/second; one job submission
spends one token.  A drained bucket yields ``(False, retry_after)``
where ``retry_after`` is the exact time until one whole token exists
again — the HTTP layer forwards it as a ``Retry-After`` header so
well-behaved clients back off precisely instead of hammering.

Thread-safety: one lock around the whole limiter.  Submissions are
orders of magnitude rarer than BDD operations; contention here is
irrelevant and the simplicity is worth it.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, Optional, Tuple

__all__ = ["TokenBucket", "RateLimiter"]


class TokenBucket:
    """One principal's budget: ``burst`` capacity, ``rate``/s refill."""

    def __init__(self, rate: float, burst: float,
                 clock=time.monotonic) -> None:
        if rate <= 0:
            raise ValueError("rate must be positive tokens/second")
        if burst < 1:
            raise ValueError("burst must allow at least one token")
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock = clock
        self._tokens = self.burst
        self._stamp = clock()

    def _refill(self) -> None:
        now = self._clock()
        self._tokens = min(self.burst,
                           self._tokens + (now - self._stamp) * self.rate)
        self._stamp = now

    def acquire(self) -> Tuple[bool, float]:
        """Spend one token: ``(True, 0.0)`` or ``(False, retry_after)``."""
        self._refill()
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return True, 0.0
        return False, (1.0 - self._tokens) / self.rate


class RateLimiter:
    """Token buckets keyed by principal.

    ``rate=None`` disables limiting entirely (every check passes) —
    the CLI maps ``--rate 0`` to that.  Buckets are created on first
    sight of a principal; the population is bounded by the configured
    token set (plus "anonymous"), so no eviction is needed.
    """

    def __init__(self, rate: Optional[float], burst: float = 10.0,
                 clock=time.monotonic, metrics=None) -> None:
        self.rate = rate if rate and rate > 0 else None
        self.burst = float(burst)
        self._clock = clock
        #: Optional :class:`~repro.serve.telemetry.ServiceMetrics`
        #: counting allowed/rejected decisions.
        self._metrics = metrics
        self._buckets: Dict[str, TokenBucket] = {}
        self._lock = threading.Lock()

    @property
    def enabled(self) -> bool:
        return self.rate is not None

    def check(self, principal: str) -> Tuple[bool, float]:
        """One submission attempt by ``principal``."""
        if self.rate is None:
            return True, 0.0
        with self._lock:
            bucket = self._buckets.get(principal)
            if bucket is None:
                bucket = TokenBucket(self.rate, self.burst,
                                     clock=self._clock)
                self._buckets[principal] = bucket
            allowed, retry_after = bucket.acquire()
        if self._metrics is not None:
            self._metrics.inc("rate_limit_allowed" if allowed
                              else "rate_limit_rejected")
        return allowed, retry_after
