"""The verification pipeline: cache probe -> build -> run -> ledger.

This is the layer between the transport (``api.py``) and the engine
(``repro.core``), and the only place the two meet.  One job flows
through:

1. **Cache probe** — the job's canonical request hash is looked up in
   the ledger's request index (:func:`repro.obs.ledger.lookup_request`).
   A hit finishes the job immediately with the archived run document:
   one engine execution per distinct request, ever, per ledger.
2. **Build** — the model registry constructs the problem on the
   requested BDD kernel (thread-local :func:`kernel_context`, so
   concurrent workers on different kernels never interfere).
3. **Run** — ``repro.verify`` with the request's Options, plus the
   job's observability sinks attached: a
   :class:`~repro.serve.jobs.JobEventTracer` for structured engine
   events, the job event log as ``heartbeat_stream`` for watchdog
   progress lines, and a :class:`~repro.obs.SpanProfiler` when the
   run will be archived.  The engine itself is byte-identical to a
   CLI run — sinks are observational only.
4. **Archive** — the finished run is recorded content-addressed in
   the ledger and indexed by request hash (with the job's
   ``request_id`` for audit), making it the cache entry for every
   future identical request and diffable via ``repro compare``.

Every job additionally runs under a *service-side*
:class:`~repro.obs.SpanProfiler` covering those pipeline phases
(``cache_probe`` / ``build`` / ``run`` / ``archive``, plus the
measured ``queue_wait``).  The rollup lands in the job document
(``phases``, ``queue_wait_seconds``, ``run_seconds``), in the
server-lifetime metrics (``job_queue_wait_seconds`` /
``job_run_seconds`` histograms, cache/executed/cancelled counters),
and — for archived runs — in a ``service.json`` sidecar next to
``run.json`` (:func:`repro.obs.ledger.record_service`).  The sidecar
keeps wall-clock and request ids *out* of the content-addressed run
document, so identical runs still collide.

A job cancelled mid-run (cooperative, through the budget hook — see
:mod:`repro.serve.jobs`) is *not* archived: its partial budget outcome
must never be served as the cached answer to an honest request.
"""

from __future__ import annotations

import threading
from dataclasses import replace
from typing import Any, Dict, Optional

from ..core import verify
from ..models import build_model
from ..obs import SpanProfiler, ledger, perf
from .jobs import Job, JobEventTracer, JobState
from .telemetry import ServiceMetrics

__all__ = ["VerificationPipeline"]


class VerificationPipeline:
    """Executes jobs; owns the ledger cache and the run counters."""

    def __init__(self, ledger_dir: Optional[str] = None,
                 use_cache: bool = True,
                 job_heartbeat: Optional[float] = 1.0,
                 metrics: Optional[ServiceMetrics] = None) -> None:
        self.ledger_dir = str(ledger_dir) if ledger_dir else None
        self.use_cache = bool(use_cache) and self.ledger_dir is not None
        #: Heartbeat cadence injected into jobs that do not set one
        #: (None leaves requests without progress lines).
        self.job_heartbeat = job_heartbeat
        #: The server-lifetime metrics sink (shared with the HTTP
        #: layer); a disabled instance makes every emit a no-op.
        self.metrics = metrics if metrics is not None \
            else ServiceMetrics(enabled=False)
        self._lock = threading.Lock()
        self._counters = {"jobs_executed": 0, "cache_hits": 0,
                          "jobs_failed": 0, "jobs_cancelled": 0}

    # -- stats ----------------------------------------------------------

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return dict(self._counters)

    def _bump(self, counter: str, metric: Optional[str] = None) -> None:
        with self._lock:
            self._counters[counter] += 1
        if metric is not None:
            self.metrics.inc(metric)

    def note_failure(self, job: Job) -> None:
        """Account one job whose exception escaped the executor
        (the :class:`~repro.serve.jobs.WorkerPool` failure hook)."""
        self._bump("jobs_failed", "jobs_failed")

    # -- the executor (WorkerPool calls this on a worker thread) --------

    def run_job(self, job: Job) -> None:
        spans = SpanProfiler()
        job.mark_running()
        queue_wait = job.started_at - job.created_at
        job.record_phase("queue_wait", queue_wait)
        self.metrics.observe_time("job_queue_wait_seconds", queue_wait)
        try:
            self._run_job_phases(job, spans)
        finally:
            self._finalize_telemetry(job, spans)

    def _run_job_phases(self, job: Job, spans: SpanProfiler) -> None:
        with spans.span("cache_probe"):
            hit = self._serve_from_cache(job)
        if hit:
            return
        request = job.request
        options = self._job_options(job)
        job.events.append("build_start", model=request.model,
                          kernel=options.kernel)
        with spans.span("build"):
            problem = build_model(request.model, bug=request.bug,
                                  kernel=options.kernel, **request.params)
        if not job.attach_manager(problem.machine.manager):
            # Cancelled between dequeue and build finish.
            self._bump("jobs_cancelled", "jobs_cancelled")
            job.finish(JobState.CANCELLED, where="built")
            return
        engine_spans = options.spans
        try:
            with spans.span("run"):
                result = verify(problem, request.method, options,
                                assisted=request.assisted)
        finally:
            job.detach_manager()
        if job.cancel_requested:
            # The budget hook unwound the engine; report cancelled and
            # keep the partial outcome out of the cache.
            self._bump("jobs_cancelled", "jobs_cancelled")
            job.result = result.to_dict(include_profiles=False)
            job.finish(JobState.CANCELLED, where="running",
                       outcome=result.outcome)
            return
        self._bump("jobs_executed", "jobs_executed")
        # Serialize exactly as the ledger document does (no iterate
        # profiles, no counterexample steps): a cache-served result
        # must be indistinguishable from a live one.
        job.result = result.to_dict(include_profiles=False,
                                    include_counterexample=False)
        if self.ledger_dir is not None:
            with spans.span("archive"):
                run_id = ledger.record_run(self.ledger_dir, result,
                                           config=options.summary(),
                                           spans=engine_spans)
                ledger.record_request(self.ledger_dir, job.request_hash,
                                      run_id, request=request.to_dict(),
                                      request_id=job.request_id)
                # Every executed (non-cached) archive also contributes
                # one trajectory point to the perf history store, keyed
                # by the same content-addressed request hash.
                # Best-effort: a broken history file must never fail
                # the job — the run itself is already archived.
                try:
                    perf.record_run_point(
                        self.ledger_dir,
                        ledger.run_document(result,
                                            config=options.summary()),
                        run_id=run_id,
                        request_hash=job.request_hash,
                        source="service")
                except OSError:
                    pass
            job.run_id = run_id
            job.events.append("archived", run_id=run_id,
                              request_hash=job.request_hash)
        job.finish(JobState.DONE, outcome=result.outcome,
                   cached=False)

    def _finalize_telemetry(self, job: Job, spans: SpanProfiler) -> None:
        """Fold the service-phase rollup into the job, the metrics,
        and (for archived runs) the ledger sidecar."""
        for name, row in spans.rollup().items():
            job.record_phase(name, row["seconds"])
        if job.started_at and job.finished_at:
            self.metrics.observe_time(
                "job_run_seconds", job.finished_at - job.started_at)
        if self.ledger_dir is not None and job.run_id is not None \
                and not job.cached:
            ledger.record_service(self.ledger_dir, job.run_id, {
                "request_id": job.request_id,
                "job_id": job.id,
                "request_hash": job.request_hash,
                "phases": dict(job.phases),
            })

    # -- helpers --------------------------------------------------------

    def _serve_from_cache(self, job: Job) -> bool:
        """Finish the job from the ledger when its hash is indexed."""
        if not self.use_cache:
            return False
        run_id = ledger.lookup_request(self.ledger_dir, job.request_hash)
        if run_id is None:
            self.metrics.inc("ledger_cache_misses")
            return False
        run_id, document = ledger.load_run(self.ledger_dir, run_id)
        self._bump("cache_hits", "ledger_cache_hits")
        job.cached = True
        job.run_id = run_id
        job.result = document.get("result")
        job.events.append("cache_hit", run_id=run_id,
                          request_hash=job.request_hash)
        job.finish(JobState.DONE,
                   outcome=(job.result or {}).get("outcome"),
                   cached=True)
        return True

    def _job_options(self, job: Job) -> Any:
        """The request's Options plus this job's observability sinks."""
        options = job.request.options
        heartbeat = options.heartbeat
        if heartbeat is None:
            heartbeat = self.job_heartbeat
        return replace(
            options,
            tracer=JobEventTracer(job.events),
            heartbeat=heartbeat,
            heartbeat_stream=job.events,
            spans=(SpanProfiler() if self.ledger_dir is not None
                   else None),
        )
