"""HTTP transport for verification-as-a-service (stdlib only).

Layering (mirroring the api / auth / rate_limiter / pipeline shape of
production detection services):

* :class:`ServerConfig` — everything tunable in one dataclass.
* :class:`VerificationService` — the transport-free application core:
  authenticate -> rate-limit -> parse -> enqueue, plus job lookup,
  cancel, and stats.  All HTTP-visible failures are
  :class:`ServiceError` (status + structured JSON body); tests can
  drive this class directly without a socket.
* :class:`VerificationServer` — a ``ThreadingHTTPServer`` bolted onto
  the service, with ``start()``/``stop()`` for embedding (tests bind
  port 0) and :meth:`serve_forever` for the CLI.

Endpoints (all JSON unless noted; auth = ``Authorization: Bearer
<token>`` when tokens are configured)::

    GET    /v1/healthz            liveness + queue/worker/cache stats
    GET    /v1/stats              healthz document + metrics snapshot
    GET    /v1/metrics            Prometheus textfile of the server's
                                  MetricsRegistry (text/plain; 0.0.4)
    GET    /v1/models             model registry (params, help)
    GET    /v1/methods            verification methods
    POST   /v1/jobs               submit a request  -> 202 job document
    GET    /v1/jobs               list job documents (no result bodies)
    GET    /v1/jobs/{id}          one job document (result included)
    GET    /v1/jobs/{id}/events   NDJSON event log; ``?since=N`` to
                                  resume, ``?follow=1`` to stream until
                                  the job finishes
    DELETE /v1/jobs/{id}          cooperative cancel

Telemetry contract: every request is assigned a **request id** —
the inbound ``X-Request-Id`` header when present and well-formed,
else server-generated — echoed in the ``X-Request-Id`` response
header, stamped on every NDJSON event line of a job it submits,
written to the structured JSONL access log, and archived with the
run's ledger record.  Request accounting (one counter increment +
one latency observation per request, keyed by
:func:`~repro.serve.telemetry.route_key`) happens *after* the
response is written, so a ``/v1/metrics`` scrape never includes
itself — a scrape after N requests reflects exactly N observations.

Backpressure contract: a full queue or a drained rate-limit bucket
answers **429 with a Retry-After header** — the server never buffers
unbounded work and never silently drops a request.
"""

from __future__ import annotations

import json
import math
import threading
import time
import uuid
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, List, Optional, Tuple
from urllib.parse import parse_qs, urlparse

from ..bdd.kernel import default_kernel
from ..bdd.levelized import default_apply
from ..core import METHODS
from ..core.options import OPTIONS_SCHEMA_VERSION
from ..models import MODELS
from ..obs.exporters import PROM_CONTENT_TYPE
from .auth import Authenticator
from .jobs import Job, JobQueue, JobState, QueueFullError, \
    RetentionPolicy, WorkerPool
from .pipeline import VerificationPipeline
from .rate_limiter import RateLimiter
from .schema import REQUEST_SCHEMA_VERSION, RequestError, parse_request, \
    valid_request_id
from .telemetry import AccessLog, ServiceMetrics, route_key

__all__ = ["ServerConfig", "ServiceError", "VerificationService",
           "VerificationServer"]

#: Seconds between event-log polls while streaming ``?follow=1``.
_STREAM_POLL_SECONDS = 0.05


@dataclass
class ServerConfig:
    """Everything the server can be told from the CLI or a test."""

    host: str = "127.0.0.1"
    port: int = 8080
    #: Accepted bearer tokens; empty = open server (development only).
    tokens: Tuple[str, ...] = ()
    #: Job submissions per second per principal (None/0 = unlimited).
    rate: Optional[float] = None
    #: Rate-limit burst capacity.
    burst: float = 10.0
    #: Worker threads executing jobs.
    workers: int = 2
    #: Bounded queue depth; beyond it POST answers 429.
    queue_limit: int = 16
    #: Ledger directory for result persistence + request-hash cache
    #: (None disables both).
    ledger_dir: Optional[str] = None
    #: Serve identical requests from the ledger without re-running.
    cache: bool = True
    #: Default heartbeat cadence injected into jobs (seconds).
    job_heartbeat: Optional[float] = 1.0
    #: Write the structured access log to stderr (the CLI default;
    #: ``access_log`` takes precedence when both are set).
    log_requests: bool = False
    #: Append structured JSONL access-log records to this file.
    access_log: Optional[str] = None
    #: Collect server-lifetime metrics (/v1/metrics, /v1/stats).
    metrics: bool = True
    #: Retire terminal jobs beyond this many, oldest first
    #: (None = unbounded by count).
    max_finished_jobs: Optional[int] = 1024
    #: Retire terminal jobs this many seconds after they finish
    #: (None = keep until the count bound evicts them).
    job_ttl: Optional[float] = None


class ServiceError(Exception):
    """An HTTP-visible failure: status code + structured JSON error."""

    def __init__(self, status: int, code: str, message: str,
                 headers: Optional[Dict[str, str]] = None,
                 **extra: Any) -> None:
        super().__init__(message)
        self.status = status
        self.code = code
        self.headers = dict(headers or {})
        self.extra = extra

    def body(self) -> Dict[str, Any]:
        error = {"code": self.code, "message": str(self)}
        error.update(self.extra)
        return {"error": error}


class VerificationService:
    """The application core behind the HTTP handler."""

    def __init__(self, config: ServerConfig) -> None:
        self.config = config
        self.telemetry = ServiceMetrics(enabled=config.metrics)
        self.access_log = AccessLog.open(config.access_log,
                                         to_stderr=config.log_requests)
        self.auth = Authenticator(config.tokens)
        self.limiter = RateLimiter(config.rate, config.burst,
                                   metrics=self.telemetry)
        self.queue = JobQueue(config.queue_limit)
        self.pipeline = VerificationPipeline(
            ledger_dir=config.ledger_dir,
            use_cache=config.cache,
            job_heartbeat=config.job_heartbeat,
            metrics=self.telemetry)
        self.pool = WorkerPool(self.queue, self.pipeline.run_job,
                               workers=config.workers,
                               on_failure=self.pipeline.note_failure)
        self.retention = RetentionPolicy(
            max_finished=config.max_finished_jobs,
            ttl=config.job_ttl)
        self._jobs: Dict[str, Job] = {}
        self._jobs_order: List[str] = []
        self._lock = threading.Lock()
        self._started = time.time()

    # -- lifecycle ------------------------------------------------------

    def start(self) -> None:
        self.pool.start()

    def stop(self) -> None:
        self.pool.stop()
        self.access_log.close()

    # -- request handling -----------------------------------------------

    def authenticate(self, authorization: Optional[str]) -> str:
        principal = self.auth.authenticate(authorization)
        if principal is None:
            self.telemetry.inc("auth_failures")
            raise ServiceError(
                401, "unauthorized",
                "missing or invalid bearer token",
                headers={"WWW-Authenticate": "Bearer"})
        return principal

    def submit(self, raw: Any, principal: str,
               request_id: Optional[str] = None) -> Job:
        """Parse, admission-control, and enqueue one request.

        ``request_id`` is the transport-level correlation id (inbound
        ``X-Request-Id`` or generated); an explicit ``request_id``
        field inside the document wins over it.
        """
        allowed, retry_after = self.limiter.check(principal)
        if not allowed:
            raise ServiceError(
                429, "rate_limited",
                f"rate limit exceeded for this token; retry in "
                f"{retry_after:.2f}s",
                headers={"Retry-After":
                         str(max(1, math.ceil(retry_after)))},
                retry_after=round(retry_after, 3))
        try:
            request = parse_request(raw)
        except RequestError as error:
            raise ServiceError(400, error.code, str(error),
                               **({"field": error.field}
                                  if error.field else {})) from None
        job = Job(request, priority=request.priority,
                  request_id=request.request_id or request_id)
        job.events.append("submitted",
                          authenticated=self.auth.enabled,
                          request_hash=job.request_hash)
        with self._lock:
            self._jobs[job.id] = job
            self._jobs_order.append(job.id)
        try:
            self.queue.put(job)
        except QueueFullError as error:
            with self._lock:
                self._jobs.pop(job.id, None)
                self._jobs_order.remove(job.id)
            self.telemetry.inc("queue_full_rejections")
            raise ServiceError(
                429, "queue_full",
                f"{error} — backpressure: retry later",
                headers={"Retry-After": "2"}) from None
        self._retire_finished()
        return job

    def job(self, job_id: str) -> Job:
        with self._lock:
            job = self._jobs.get(job_id)
        if job is None:
            raise ServiceError(404, "unknown_job",
                               f"no job {job_id!r}")
        return job

    def cancel(self, job_id: str) -> Dict[str, Any]:
        job = self.job(job_id)
        self.telemetry.inc("cancel_requests")
        newly = job.cancel()
        doc = job.snapshot(include_result=False)
        doc["cancelled"] = newly or job.state == JobState.CANCELLED
        return doc

    def list_jobs(self) -> List[Dict[str, Any]]:
        self._retire_finished()
        with self._lock:
            jobs = [self._jobs[job_id] for job_id in self._jobs_order]
        return [job.snapshot(include_result=False) for job in jobs]

    def stats(self) -> Dict[str, Any]:
        self._retire_finished()
        self.refresh_gauges()
        with self._lock:
            states: Dict[str, int] = {}
            for job in self._jobs.values():
                states[job.state] = states.get(job.state, 0) + 1
        stats = {
            "status": "ok",
            "uptime_seconds": round(time.time() - self._started, 3),
            "workers": self.pool.alive,
            "workers_busy": self.pool.busy,
            "queue_depth": len(self.queue),
            "queue_limit": self.queue.limit,
            "auth_enabled": self.auth.enabled,
            "rate_limit_enabled": self.limiter.enabled,
            "cache_enabled": self.pipeline.use_cache,
            "metrics_enabled": self.telemetry.enabled,
            "ledger_dir": self.pipeline.ledger_dir,
            "kernel": default_kernel(),
            "apply": default_apply(),
            "jobs_by_state": states,
            "retention": {
                "max_finished_jobs": self.retention.max_finished,
                "job_ttl": self.retention.ttl,
            },
            "schema_version": REQUEST_SCHEMA_VERSION,
            "request_schema_version": REQUEST_SCHEMA_VERSION,
            "options_schema_version": OPTIONS_SCHEMA_VERSION,
        }
        stats.update(self.pipeline.stats())
        return stats

    def stats_with_metrics(self) -> Dict[str, Any]:
        """The healthz document plus the metrics snapshot
        (``GET /v1/stats``)."""
        doc = self.stats()
        doc["metrics"] = self.telemetry.snapshot()
        return doc

    def refresh_gauges(self) -> None:
        """Update the point-in-time saturation gauges (called before
        every scrape/stats read — gauges describe *now*)."""
        if not self.telemetry.enabled:
            return
        now = time.time()
        self.telemetry.gauge("uptime_seconds",
                             round(now - self._started, 3))
        self.telemetry.gauge("queue_depth", float(len(self.queue)))
        self.telemetry.gauge("queue_limit", float(self.queue.limit))
        self.telemetry.gauge("workers_alive", float(self.pool.alive))
        self.telemetry.gauge("workers_busy", float(self.pool.busy))
        oldest = self.queue.oldest_created_at()
        self.telemetry.gauge(
            "queue_oldest_age_seconds",
            round(now - oldest, 3) if oldest is not None else 0.0)

    def metrics_prometheus(self) -> str:
        """The Prometheus textfile body, or 404 when metrics are off."""
        if not self.telemetry.enabled:
            raise ServiceError(404, "metrics_disabled",
                               "server started without metrics "
                               "(drop --no-metrics to enable)")
        self.refresh_gauges()
        return self.telemetry.to_prometheus()

    def _retire_finished(self) -> None:
        """Apply the retention policy (TTL + count bound).

        Runs at submit time (where growth happens) and on list/stats
        reads (so TTL expiry is visible on an otherwise idle server).
        Direct ``GET /v1/jobs/{id}`` polls deliberately do not GC —
        a client polling a just-finished job should not race its own
        retention.
        """
        with self._lock:
            jobs = [self._jobs[job_id] for job_id in self._jobs_order]
            for job in self.retention.retire(jobs):
                self._jobs.pop(job.id, None)
                self._jobs_order.remove(job.id)


def _make_handler(service: VerificationService):
    """Build the request-handler class bound to one service."""

    class Handler(BaseHTTPRequestHandler):
        server_version = "repro-serve/1"

        # -- plumbing ---------------------------------------------------

        def log_message(self, fmt: str, *args: Any) -> None:
            """Silenced: the structured access log replaces it."""

        def _send_json(self, status: int, payload: Any,
                       headers: Optional[Dict[str, str]] = None) -> None:
            body = (json.dumps(payload, indent=2, default=str)
                    + "\n").encode("utf-8")
            self._status = status
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            self.send_header("X-Request-Id", self._request_id)
            for name, value in (headers or {}).items():
                self.send_header(name, value)
            self.end_headers()
            self.wfile.write(body)

        def _send_text(self, status: int, text: str,
                       content_type: str) -> None:
            body = text.encode("utf-8")
            self._status = status
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(body)))
            self.send_header("X-Request-Id", self._request_id)
            self.end_headers()
            self.wfile.write(body)

        def _send_error_doc(self, error: ServiceError) -> None:
            self._send_json(error.status, error.body(),
                            headers=error.headers)

        def _read_json(self) -> Any:
            length = int(self.headers.get("Content-Length") or 0)
            raw = self.rfile.read(length) if length else b""
            if not raw:
                raise ServiceError(400, "empty_body",
                                   "request body must be a JSON object")
            try:
                return json.loads(raw.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as err:
                raise ServiceError(400, "bad_json",
                                   f"request body is not valid JSON: "
                                   f"{err}") from None

        def _route(self) -> Tuple[str, Dict[str, List[str]]]:
            parsed = urlparse(self.path)
            return parsed.path.rstrip("/") or "/", parse_qs(parsed.query)

        def _principal(self) -> str:
            return service.authenticate(
                self.headers.get("Authorization"))

        def _inbound_request_id(self) -> str:
            """The request's correlation id: a well-formed inbound
            ``X-Request-Id``, else freshly generated (a malformed one
            is ignored, not an error — correlation must never break a
            request)."""
            supplied = self.headers.get("X-Request-Id")
            if supplied and valid_request_id(supplied):
                return supplied
            return uuid.uuid4().hex[:12]

        # -- verbs ------------------------------------------------------

        def do_GET(self) -> None:  # noqa: N802 (http.server API)
            self._handle("GET")

        def do_POST(self) -> None:  # noqa: N802
            self._handle("POST")

        def do_DELETE(self) -> None:  # noqa: N802
            self._handle("DELETE")

        def _handle(self, verb: str) -> None:
            """One request: dispatch, then account and access-log it.

            The telemetry write happens after the response bytes are
            out, so a metrics scrape reflects every *prior* request
            and never itself.
            """
            started = time.perf_counter()
            path, query = self._route()
            self._request_id = self._inbound_request_id()
            self._status = 500
            self._log_extra: Dict[str, Any] = {}
            try:
                try:
                    self._dispatch(verb, path, query)
                except ServiceError as error:
                    self._send_error_doc(error)
            except (BrokenPipeError, ConnectionResetError):
                pass  # client went away mid-response
            finally:
                seconds = time.perf_counter() - started
                route = route_key(verb, path)
                service.telemetry.observe_request(route, self._status,
                                                  seconds)
                record = {"ts": round(time.time(), 3),
                          "request_id": self._request_id,
                          "remote": self.address_string(),
                          "method": verb,
                          "path": path,
                          "route": route,
                          "status": self._status,
                          "seconds": round(seconds, 6)}
                record.update(self._log_extra)
                service.access_log.log(record)

        def _dispatch(self, verb: str, path: str,
                      query: Dict[str, List[str]]) -> None:
            if verb == "POST":
                principal = self._principal()
                if path != "/v1/jobs":
                    raise ServiceError(404, "unknown_endpoint",
                                       f"no POST endpoint {path!r}")
                job = service.submit(self._read_json(), principal,
                                     request_id=self._request_id)
                self._log_extra["job_id"] = job.id
                self._send_json(202, job.snapshot(include_result=False),
                                headers={"Location":
                                         f"/v1/jobs/{job.id}"})
                return
            if verb == "DELETE":
                self._principal()
                if not path.startswith("/v1/jobs/"):
                    raise ServiceError(404, "unknown_endpoint",
                                       f"no DELETE endpoint {path!r}")
                doc = service.cancel(path[len("/v1/jobs/"):])
                self._log_extra["job_id"] = doc.get("id")
                self._send_json(200, doc)
                return
            # GET
            if path == "/v1/healthz":
                self._send_json(200, service.stats())
                return
            self._principal()
            if path == "/v1/metrics":
                self._send_text(200, service.metrics_prometheus(),
                                PROM_CONTENT_TYPE)
            elif path == "/v1/stats":
                self._send_json(200, service.stats_with_metrics())
            elif path == "/v1/models":
                self._send_json(200, {
                    name: {"help": spec.help,
                           "params": sorted(spec.params),
                           "bug_kind": spec.bug_kind}
                    for name, spec in MODELS.items()})
            elif path == "/v1/methods":
                self._send_json(200, {"methods": list(METHODS)})
            elif path == "/v1/jobs":
                self._send_json(200, {"jobs": service.list_jobs()})
            elif path.startswith("/v1/jobs/") \
                    and path.endswith("/events"):
                job_id = path[len("/v1/jobs/"):-len("/events")]
                job = service.job(job_id)
                self._log_extra["job_id"] = job.id
                self._stream_events(job, query)
            elif path.startswith("/v1/jobs/"):
                job = service.job(path[len("/v1/jobs/"):])
                self._log_extra["job_id"] = job.id
                self._send_json(200, job.snapshot())
            else:
                raise ServiceError(404, "unknown_endpoint",
                                   f"no endpoint {path!r}")

        # -- event streaming -------------------------------------------

        def _stream_events(self, job: Job,
                           query: Dict[str, List[str]]) -> None:
            try:
                since = int(query.get("since", ["0"])[0])
            except ValueError:
                raise ServiceError(400, "bad_since",
                                   "'since' must be an integer") from None
            follow = query.get("follow", ["0"])[0] in ("1", "true")
            self._status = 200
            self.send_response(200)
            self.send_header("Content-Type", "application/x-ndjson")
            self.send_header("X-Job-State", job.state)
            self.send_header("X-Request-Id", self._request_id)
            self.end_headers()
            seq = since
            dropped = 0
            try:
                while True:
                    current = job.events.dropped
                    if current != dropped:
                        # Surface buffer truncation inline so a tailing
                        # client knows the log is not gapless.
                        line = json.dumps(
                            {"kind": "events_dropped",
                             "dropped": current,
                             "request_id": job.request_id},
                            default=str) + "\n"
                        self.wfile.write(line.encode("utf-8"))
                        dropped = current
                    batch = job.events.snapshot(seq)
                    if batch:
                        for event in batch:
                            line = json.dumps(event, default=str) + "\n"
                            self.wfile.write(line.encode("utf-8"))
                            seq = event["seq"] + 1
                        self.wfile.flush()
                        continue
                    if not follow or job.terminal:
                        return
                    time.sleep(_STREAM_POLL_SECONDS)
            except (BrokenPipeError, ConnectionResetError):
                return  # client went away; nothing to clean up

    return Handler


class VerificationServer:
    """ThreadingHTTPServer + worker pool, embeddable and CLI-runnable.

    ``ServerConfig.port = 0`` binds an ephemeral port (tests);
    :attr:`port` always reports the real one.
    """

    def __init__(self, config: ServerConfig) -> None:
        self.config = config
        self.service = VerificationService(config)
        self._httpd = ThreadingHTTPServer(
            (config.host, config.port), _make_handler(self.service))
        self._httpd.daemon_threads = True
        self.host, self.port = self._httpd.server_address[:2]
        self._thread: Optional[threading.Thread] = None

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> None:
        """Run workers + HTTP loop on background threads (tests)."""
        self.service.start()
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._httpd.serve_forever,
                name="repro-serve-http", daemon=True)
            self._thread.start()

    def stop(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        self.service.stop()

    def serve_forever(self) -> None:
        """Blocking run (the ``repro serve`` CLI path)."""
        self.service.start()
        try:
            self._httpd.serve_forever()
        finally:
            self._httpd.server_close()
            self.service.stop()
