"""HTTP transport for verification-as-a-service (stdlib only).

Layering (mirroring the api / auth / rate_limiter / pipeline shape of
production detection services):

* :class:`ServerConfig` — everything tunable in one dataclass.
* :class:`VerificationService` — the transport-free application core:
  authenticate -> rate-limit -> parse -> enqueue, plus job lookup,
  cancel, and stats.  All HTTP-visible failures are
  :class:`ServiceError` (status + structured JSON body); tests can
  drive this class directly without a socket.
* :class:`VerificationServer` — a ``ThreadingHTTPServer`` bolted onto
  the service, with ``start()``/``stop()`` for embedding (tests bind
  port 0) and :meth:`serve_forever` for the CLI.

Endpoints (all JSON; auth = ``Authorization: Bearer <token>`` when
tokens are configured)::

    GET    /v1/healthz            liveness + queue/worker/cache stats
    GET    /v1/models             model registry (params, help)
    GET    /v1/methods            verification methods
    POST   /v1/jobs               submit a request  -> 202 job document
    GET    /v1/jobs               list job documents (no result bodies)
    GET    /v1/jobs/{id}          one job document (result included)
    GET    /v1/jobs/{id}/events   NDJSON event log; ``?since=N`` to
                                  resume, ``?follow=1`` to stream until
                                  the job finishes
    DELETE /v1/jobs/{id}          cooperative cancel

Backpressure contract: a full queue or a drained rate-limit bucket
answers **429 with a Retry-After header** — the server never buffers
unbounded work and never silently drops a request.
"""

from __future__ import annotations

import json
import math
import sys
import threading
import time
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, List, Optional, Tuple
from urllib.parse import parse_qs, urlparse

from ..core import METHODS
from ..models import MODELS
from .auth import Authenticator
from .jobs import Job, JobQueue, JobState, QueueFullError, \
    RetentionPolicy, WorkerPool
from .pipeline import VerificationPipeline
from .rate_limiter import RateLimiter
from .schema import REQUEST_SCHEMA_VERSION, RequestError, parse_request

__all__ = ["ServerConfig", "ServiceError", "VerificationService",
           "VerificationServer"]

#: Seconds between event-log polls while streaming ``?follow=1``.
_STREAM_POLL_SECONDS = 0.05


@dataclass
class ServerConfig:
    """Everything the server can be told from the CLI or a test."""

    host: str = "127.0.0.1"
    port: int = 8080
    #: Accepted bearer tokens; empty = open server (development only).
    tokens: Tuple[str, ...] = ()
    #: Job submissions per second per principal (None/0 = unlimited).
    rate: Optional[float] = None
    #: Rate-limit burst capacity.
    burst: float = 10.0
    #: Worker threads executing jobs.
    workers: int = 2
    #: Bounded queue depth; beyond it POST answers 429.
    queue_limit: int = 16
    #: Ledger directory for result persistence + request-hash cache
    #: (None disables both).
    ledger_dir: Optional[str] = None
    #: Serve identical requests from the ledger without re-running.
    cache: bool = True
    #: Default heartbeat cadence injected into jobs (seconds).
    job_heartbeat: Optional[float] = 1.0
    #: Print one access-log line per request to stderr.
    log_requests: bool = False
    #: Retire terminal jobs beyond this many, oldest first
    #: (None = unbounded by count).
    max_finished_jobs: Optional[int] = 1024
    #: Retire terminal jobs this many seconds after they finish
    #: (None = keep until the count bound evicts them).
    job_ttl: Optional[float] = None


class ServiceError(Exception):
    """An HTTP-visible failure: status code + structured JSON error."""

    def __init__(self, status: int, code: str, message: str,
                 headers: Optional[Dict[str, str]] = None,
                 **extra: Any) -> None:
        super().__init__(message)
        self.status = status
        self.code = code
        self.headers = dict(headers or {})
        self.extra = extra

    def body(self) -> Dict[str, Any]:
        error = {"code": self.code, "message": str(self)}
        error.update(self.extra)
        return {"error": error}


class VerificationService:
    """The application core behind the HTTP handler."""

    def __init__(self, config: ServerConfig) -> None:
        self.config = config
        self.auth = Authenticator(config.tokens)
        self.limiter = RateLimiter(config.rate, config.burst)
        self.queue = JobQueue(config.queue_limit)
        self.pipeline = VerificationPipeline(
            ledger_dir=config.ledger_dir,
            use_cache=config.cache,
            job_heartbeat=config.job_heartbeat)
        self.pool = WorkerPool(self.queue, self.pipeline.run_job,
                               workers=config.workers)
        self.retention = RetentionPolicy(
            max_finished=config.max_finished_jobs,
            ttl=config.job_ttl)
        self._jobs: Dict[str, Job] = {}
        self._jobs_order: List[str] = []
        self._lock = threading.Lock()
        self._started = time.time()

    # -- lifecycle ------------------------------------------------------

    def start(self) -> None:
        self.pool.start()

    def stop(self) -> None:
        self.pool.stop()

    # -- request handling -----------------------------------------------

    def authenticate(self, authorization: Optional[str]) -> str:
        principal = self.auth.authenticate(authorization)
        if principal is None:
            raise ServiceError(
                401, "unauthorized",
                "missing or invalid bearer token",
                headers={"WWW-Authenticate": "Bearer"})
        return principal

    def submit(self, raw: Any, principal: str) -> Job:
        """Parse, admission-control, and enqueue one request."""
        allowed, retry_after = self.limiter.check(principal)
        if not allowed:
            raise ServiceError(
                429, "rate_limited",
                f"rate limit exceeded for this token; retry in "
                f"{retry_after:.2f}s",
                headers={"Retry-After":
                         str(max(1, math.ceil(retry_after)))},
                retry_after=round(retry_after, 3))
        try:
            request = parse_request(raw)
        except RequestError as error:
            raise ServiceError(400, error.code, str(error),
                               **({"field": error.field}
                                  if error.field else {})) from None
        job = Job(request, priority=request.priority)
        job.events.append("submitted",
                          authenticated=self.auth.enabled,
                          request_hash=job.request_hash)
        with self._lock:
            self._jobs[job.id] = job
            self._jobs_order.append(job.id)
        try:
            self.queue.put(job)
        except QueueFullError as error:
            with self._lock:
                self._jobs.pop(job.id, None)
                self._jobs_order.remove(job.id)
            raise ServiceError(
                429, "queue_full",
                f"{error} — backpressure: retry later",
                headers={"Retry-After": "2"}) from None
        self._retire_finished()
        return job

    def job(self, job_id: str) -> Job:
        with self._lock:
            job = self._jobs.get(job_id)
        if job is None:
            raise ServiceError(404, "unknown_job",
                               f"no job {job_id!r}")
        return job

    def cancel(self, job_id: str) -> Dict[str, Any]:
        job = self.job(job_id)
        newly = job.cancel()
        doc = job.snapshot(include_result=False)
        doc["cancelled"] = newly or job.state == JobState.CANCELLED
        return doc

    def list_jobs(self) -> List[Dict[str, Any]]:
        self._retire_finished()
        with self._lock:
            jobs = [self._jobs[job_id] for job_id in self._jobs_order]
        return [job.snapshot(include_result=False) for job in jobs]

    def stats(self) -> Dict[str, Any]:
        self._retire_finished()
        with self._lock:
            states: Dict[str, int] = {}
            for job in self._jobs.values():
                states[job.state] = states.get(job.state, 0) + 1
        stats = {
            "status": "ok",
            "uptime_seconds": round(time.time() - self._started, 3),
            "workers": self.pool.alive,
            "queue_depth": len(self.queue),
            "queue_limit": self.queue.limit,
            "auth_enabled": self.auth.enabled,
            "rate_limit_enabled": self.limiter.enabled,
            "cache_enabled": self.pipeline.use_cache,
            "ledger_dir": self.pipeline.ledger_dir,
            "jobs_by_state": states,
            "retention": {
                "max_finished_jobs": self.retention.max_finished,
                "job_ttl": self.retention.ttl,
            },
            "schema_version": REQUEST_SCHEMA_VERSION,
        }
        stats.update(self.pipeline.stats())
        return stats

    def _retire_finished(self) -> None:
        """Apply the retention policy (TTL + count bound).

        Runs at submit time (where growth happens) and on list/stats
        reads (so TTL expiry is visible on an otherwise idle server).
        Direct ``GET /v1/jobs/{id}`` polls deliberately do not GC —
        a client polling a just-finished job should not race its own
        retention.
        """
        with self._lock:
            jobs = [self._jobs[job_id] for job_id in self._jobs_order]
            for job in self.retention.retire(jobs):
                self._jobs.pop(job.id, None)
                self._jobs_order.remove(job.id)


def _make_handler(service: VerificationService):
    """Build the request-handler class bound to one service."""

    class Handler(BaseHTTPRequestHandler):
        server_version = "repro-serve/1"

        # -- plumbing ---------------------------------------------------

        def log_message(self, fmt: str, *args: Any) -> None:
            if service.config.log_requests:
                sys.stderr.write("[repro:serve] %s - %s\n"
                                 % (self.address_string(), fmt % args))

        def _send_json(self, status: int, payload: Any,
                       headers: Optional[Dict[str, str]] = None) -> None:
            body = (json.dumps(payload, indent=2, default=str)
                    + "\n").encode("utf-8")
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            for name, value in (headers or {}).items():
                self.send_header(name, value)
            self.end_headers()
            self.wfile.write(body)

        def _send_error_doc(self, error: ServiceError) -> None:
            self._send_json(error.status, error.body(),
                            headers=error.headers)

        def _read_json(self) -> Any:
            length = int(self.headers.get("Content-Length") or 0)
            raw = self.rfile.read(length) if length else b""
            if not raw:
                raise ServiceError(400, "empty_body",
                                   "request body must be a JSON object")
            try:
                return json.loads(raw.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as err:
                raise ServiceError(400, "bad_json",
                                   f"request body is not valid JSON: "
                                   f"{err}") from None

        def _route(self) -> Tuple[str, Dict[str, List[str]]]:
            parsed = urlparse(self.path)
            return parsed.path.rstrip("/") or "/", parse_qs(parsed.query)

        def _principal(self) -> str:
            return service.authenticate(
                self.headers.get("Authorization"))

        # -- verbs ------------------------------------------------------

        def do_GET(self) -> None:  # noqa: N802 (http.server API)
            try:
                path, query = self._route()
                if path == "/v1/healthz":
                    self._send_json(200, service.stats())
                    return
                self._principal()
                if path == "/v1/models":
                    self._send_json(200, {
                        name: {"help": spec.help,
                               "params": sorted(spec.params),
                               "bug_kind": spec.bug_kind}
                        for name, spec in MODELS.items()})
                elif path == "/v1/methods":
                    self._send_json(200, {"methods": list(METHODS)})
                elif path == "/v1/jobs":
                    self._send_json(200, {"jobs": service.list_jobs()})
                elif path.startswith("/v1/jobs/") \
                        and path.endswith("/events"):
                    job_id = path[len("/v1/jobs/"):-len("/events")]
                    self._stream_events(service.job(job_id), query)
                elif path.startswith("/v1/jobs/"):
                    job = service.job(path[len("/v1/jobs/"):])
                    self._send_json(200, job.snapshot())
                else:
                    raise ServiceError(404, "unknown_endpoint",
                                       f"no endpoint {path!r}")
            except ServiceError as error:
                self._send_error_doc(error)

        def do_POST(self) -> None:  # noqa: N802
            try:
                path, _query = self._route()
                principal = self._principal()
                if path != "/v1/jobs":
                    raise ServiceError(404, "unknown_endpoint",
                                       f"no POST endpoint {path!r}")
                job = service.submit(self._read_json(), principal)
                self._send_json(202, job.snapshot(include_result=False),
                                headers={"Location":
                                         f"/v1/jobs/{job.id}"})
            except ServiceError as error:
                self._send_error_doc(error)

        def do_DELETE(self) -> None:  # noqa: N802
            try:
                path, _query = self._route()
                self._principal()
                if not path.startswith("/v1/jobs/"):
                    raise ServiceError(404, "unknown_endpoint",
                                       f"no DELETE endpoint {path!r}")
                self._send_json(200,
                                service.cancel(path[len("/v1/jobs/"):]))
            except ServiceError as error:
                self._send_error_doc(error)

        # -- event streaming -------------------------------------------

        def _stream_events(self, job: Job,
                           query: Dict[str, List[str]]) -> None:
            try:
                since = int(query.get("since", ["0"])[0])
            except ValueError:
                raise ServiceError(400, "bad_since",
                                   "'since' must be an integer") from None
            follow = query.get("follow", ["0"])[0] in ("1", "true")
            self.send_response(200)
            self.send_header("Content-Type", "application/x-ndjson")
            self.send_header("X-Job-State", job.state)
            self.end_headers()
            seq = since
            try:
                while True:
                    batch = job.events.snapshot(seq)
                    if batch:
                        for event in batch:
                            line = json.dumps(event, default=str) + "\n"
                            self.wfile.write(line.encode("utf-8"))
                            seq = event["seq"] + 1
                        self.wfile.flush()
                        continue
                    if not follow or job.terminal:
                        return
                    time.sleep(_STREAM_POLL_SECONDS)
            except (BrokenPipeError, ConnectionResetError):
                return  # client went away; nothing to clean up

    return Handler


class VerificationServer:
    """ThreadingHTTPServer + worker pool, embeddable and CLI-runnable.

    ``ServerConfig.port = 0`` binds an ephemeral port (tests);
    :attr:`port` always reports the real one.
    """

    def __init__(self, config: ServerConfig) -> None:
        self.config = config
        self.service = VerificationService(config)
        self._httpd = ThreadingHTTPServer(
            (config.host, config.port), _make_handler(self.service))
        self._httpd.daemon_threads = True
        self.host, self.port = self._httpd.server_address[:2]
        self._thread: Optional[threading.Thread] = None

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> None:
        """Run workers + HTTP loop on background threads (tests)."""
        self.service.start()
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._httpd.serve_forever,
                name="repro-serve-http", daemon=True)
            self._thread.start()

    def stop(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        self.service.stop()

    def serve_forever(self) -> None:
        """Blocking run (the ``repro serve`` CLI path)."""
        self.service.start()
        try:
            self._httpd.serve_forever()
        finally:
            self._httpd.server_close()
            self.service.stop()
