"""icbdd — implicitly conjoined BDDs for symbolic verification.

A from-scratch reproduction of Hu, York & Dill, "New Techniques for
Efficient Verification with Implicitly Conjoined BDDs" (DAC 1994),
including every substrate the paper relies on:

* :mod:`repro.bdd` — ROBDDs with complement edges, generalized
  cofactors (Restrict/Constrain), relational products, garbage
  collection, and size-bounded conjunction.
* :mod:`repro.expr` — symbolic bit-vectors (adders, comparators,
  muxes) for describing datapath designs.
* :mod:`repro.fsm` — symbolic machines, the Image/PreImage/BackImage
  operators of the paper's Definition 1, and counterexample traces.
* :mod:`repro.iclist` — the paper's contribution: implicitly conjoined
  lists, the Figure 1 greedy evaluator, Theorem 2's matching-based
  optimal pairwise cover, and the exact termination test of
  Section III.B (with the Theorem 3 Restrict optimization).
* :mod:`repro.core` — the five verification engines from the tables:
  Fwd, Bkwd, FD, ICI, and XICI.
* :mod:`repro.explicit` — a brute-force explicit-state checker used as
  an independent oracle.
* :mod:`repro.models` — the paper's four examples: typed FIFO,
  message network, moving-average filter, pipelined processor.
* :mod:`repro.bench` — the harness that regenerates Tables 1-3.

Quick taste::

    from repro.models import typed_fifo
    from repro.core import verify

    result = verify(typed_fifo(depth=5, width=8), "xici")
    assert result.verified
    print(result.max_iterate_profile)   # "41 (5 x 9 nodes)"
"""

__version__ = "1.0.0"

from . import bdd, bench, core, explicit, expr, fsm, iclist, models

__all__ = ["bdd", "bench", "core", "explicit", "expr", "fsm", "iclist",
           "models", "__version__"]
