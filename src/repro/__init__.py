"""icbdd — implicitly conjoined BDDs for symbolic verification.

A from-scratch reproduction of Hu, York & Dill, "New Techniques for
Efficient Verification with Implicitly Conjoined BDDs" (DAC 1994),
including every substrate the paper relies on:

* :mod:`repro.bdd` — ROBDDs with complement edges, generalized
  cofactors (Restrict/Constrain), relational products, garbage
  collection, and size-bounded conjunction.
* :mod:`repro.expr` — symbolic bit-vectors (adders, comparators,
  muxes) for describing datapath designs.
* :mod:`repro.fsm` — symbolic machines, the Image/PreImage/BackImage
  operators of the paper's Definition 1, and counterexample traces.
* :mod:`repro.iclist` — the paper's contribution: implicitly conjoined
  lists, the Figure 1 greedy evaluator, Theorem 2's matching-based
  optimal pairwise cover, and the exact termination test of
  Section III.B (with the Theorem 3 Restrict optimization).
* :mod:`repro.core` — the five verification engines from the tables:
  Fwd, Bkwd, FD, ICI, and XICI.
* :mod:`repro.explicit` — a brute-force explicit-state checker used as
  an independent oracle.
* :mod:`repro.models` — the paper's four examples: typed FIFO,
  message network, moving-average filter, pipelined processor.
* :mod:`repro.bench` — the harness that regenerates Tables 1-3.

* :mod:`repro.trace` — structured engine tracing: typed events from
  every engine (iterations, merges, termination tiers, GC, budgets)
  to null / recording / JSONL tracers.
* :mod:`repro.obs` — metrics and profiling: counters, fixed-bucket
  histograms, phase timers, a periodic resource sampler, and JSONL /
  Prometheus / terminal exporters, plus the versioned ``BENCH_*.json``
  schema behind ``benchmarks/regress.py``; also the hierarchical span
  profiler (Chrome-trace / speedscope exporters), the content-addressed
  run ledger with phase-by-phase cross-run diffing, and the live
  progress watchdog.

**The stable public API** is this module's top level::

    import repro

    result = repro.verify(repro.build_model("fifo", depth=5, width=8),
                          "xici")
    assert result.verified
    print(result.max_iterate_profile)   # "41 (5 x 9 nodes)"
    print(result.to_json(indent=2))     # machine-readable row
    print(repro.available_models())     # what you can build

``repro.verify``, ``repro.Options``, ``repro.VerificationResult``,
``repro.METHODS``, ``repro.available_models`` / ``repro.build_model``
and the tracer classes are the supported surface (see ``docs/API.md``);
the submodule paths (``repro.core.runner.verify`` etc.) keep working
but are implementation layout, not interface.
"""

__version__ = "1.2.0"

from . import bdd, bench, core, explicit, expr, fsm, iclist, models, \
    obs, trace
from .core import METHODS, Options, OPTIONS_SCHEMA_VERSION, Outcome, \
    Problem, VerificationResult, request_hash, verify
from .models import MODELS, available_models, build_model
from .obs import MetricsRegistry, NullRegistry, NullSpanSink, \
    ResourceSampler, SpanProfiler, Watchdog
from .trace import JsonlTracer, NullTracer, RecordingTracer, Tracer

__all__ = ["bdd", "bench", "core", "explicit", "expr", "fsm", "iclist",
           "models", "obs", "trace", "__version__",
           "verify", "METHODS", "Options", "OPTIONS_SCHEMA_VERSION",
           "request_hash", "Outcome", "Problem",
           "VerificationResult",
           "available_models", "build_model", "MODELS",
           "Tracer", "NullTracer", "RecordingTracer", "JsonlTracer",
           "MetricsRegistry", "NullRegistry", "ResourceSampler",
           "SpanProfiler", "NullSpanSink", "Watchdog"]
