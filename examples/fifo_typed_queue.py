#!/usr/bin/env python3
"""The paper's typed-FIFO example: watch the blowup, then avoid it.

Sweeps queue depth and prints the size of the largest iterate under
the conventional backward traversal vs the implicit-conjunction
methods — the opening contrast of the paper's Table 1.

Run:  python examples/fifo_typed_queue.py [--width 8] [--depths 2 4 6 8]
"""

import argparse

from repro.core import Options, verify
from repro.models import typed_fifo


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--width", type=int, default=8,
                        help="item width in bits (paper: 8)")
    parser.add_argument("--depths", type=int, nargs="+",
                        default=[2, 3, 4, 5],
                        help="queue depths to sweep")
    parser.add_argument("--bound", type=int, default=None,
                        help="type constraint (default 2**(width-1))")
    args = parser.parse_args()

    print(f"{args.width}-bit typed FIFO: every item must stay <= "
          f"{args.bound if args.bound is not None else 1 << (args.width - 1)}")
    print(f"{'depth':>6}  {'Bkwd iterate':>14}  {'XICI iterate':>14}  "
          f"{'XICI profile'}")
    for depth in args.depths:
        mono = verify(typed_fifo(depth=depth, width=args.width,
                                 bound=args.bound), "bkwd")
        impl = verify(typed_fifo(depth=depth, width=args.width,
                                 bound=args.bound), "xici")
        assert mono.verified and impl.verified
        print(f"{depth:>6}  {mono.max_iterate_nodes:>14}  "
              f"{impl.max_iterate_nodes:>14}  "
              f"{impl.max_iterate_profile}")
    print("\nThe monolithic iterate doubles with every extra slot; the")
    print("implicit conjunction adds one 9-node BDD per slot.")


if __name__ == "__main__":
    main()
