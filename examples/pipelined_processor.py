#!/usr/bin/env python3
"""The paper's pipelined processor (Figure 3): bypass, stall, verify.

Modes:

* default — verify the pipelined implementation against the
  non-pipelined specification, then show the two classic bugs being
  caught (missing bypass, spurious bypass) with concrete traces;
* ``--diagram`` — print the Figure 3 block diagram;
* ``--demo`` — run the paper's own hazard program (LD r1,#1 ;
  ADD r0,r1) step by step.

Run:  python examples/pipelined_processor.py [--regs 2] [--bits 1]
"""

import argparse

from repro.core import Options, verify
from repro.models import OPCODES, pipelined_processor
from repro.models.pipeline import DIAGRAM


def encode(problem, op, src=0, dst=0, imm=0):
    reg_bits = max(1, (problem.parameters["num_regs"] - 1).bit_length())
    word = OPCODES[op]
    word |= src << 3
    word |= dst << (3 + reg_bits)
    word |= imm << (3 + 2 * reg_bits)
    return word


def demo(problem) -> None:
    machine = problem.machine
    datapath = problem.parameters["datapath"]
    num_regs = problem.parameters["num_regs"]
    reg_bits = max(1, (num_regs - 1).bit_length())
    width = 3 + 2 * reg_bits + datapath
    state = {name: False for name in machine.current_names}
    program = [("LD r1,#1", encode(problem, "LD", dst=1, imm=1)),
               ("ADD r0,r1", encode(problem, "ADD", src=1, dst=0)),
               ("NOP", encode(problem, "NOP")),
               ("NOP", encode(problem, "NOP")),
               ("NOP", encode(problem, "NOP"))]
    print("  cycle  fetch       impl-regfile    spec-regfile")
    for cycle, (label, word) in enumerate(program):
        impl = [sum(1 << i for i in range(datapath)
                    if state[f"rf{r}[{i}]"]) for r in range(num_regs)]
        spec = [sum(1 << i for i in range(datapath)
                    if state[f"rfs{r}[{i}]"]) for r in range(num_regs)]
        print(f"  {cycle:>5}  {label:<10}  {impl!s:<14}  {spec!s}")
        inputs = {f"instr[{i}]": bool((word >> i) & 1)
                  for i in range(width)}
        state = machine.step(state, inputs)
    impl = [sum(1 << i for i in range(datapath) if state[f"rf{r}[{i}]"])
            for r in range(num_regs)]
    spec = [sum(1 << i for i in range(datapath) if state[f"rfs{r}[{i}]"])
            for r in range(num_regs)]
    print(f"  final: impl {impl}, spec {spec} — the bypass made the "
          f"dependent ADD read r1 correctly")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--regs", type=int, default=2,
                        help="registers (paper: 2 and 4)")
    parser.add_argument("--bits", type=int, default=1,
                        help="datapath width B (paper: 1, 2, 3)")
    parser.add_argument("--diagram", action="store_true")
    parser.add_argument("--demo", action="store_true")
    args = parser.parse_args()

    if args.diagram:
        print(DIAGRAM)
        return

    problem = pipelined_processor(num_regs=args.regs, datapath=args.bits)
    if args.demo:
        demo(problem)
        return

    print(f"== verifying {args.regs}R/{args.bits}B pipelined processor ==")
    result = verify(problem, "xici")
    print(f"  XICI: {result.outcome}, {result.iterations} iterations, "
          f"iterate {result.max_iterate_profile}")

    for bug in ("no-bypass", "wrong-bypass"):
        broken = pipelined_processor(num_regs=args.regs,
                                     datapath=args.bits, buggy=bug)
        result = verify(broken, "xici")
        print(f"\n== bug {bug!r}: {result.outcome} ==")
        trace = result.trace
        print(f"  counterexample length {len(trace)}, replay: "
              f"{trace.replay_check(broken.machine)}")
        final = trace.steps[-1].state
        impl = [sum(1 << i for i in range(args.bits)
                    if final[f"rf{r}[{i}]"]) for r in range(args.regs)]
        spec = [sum(1 << i for i in range(args.bits)
                    if final[f"rfs{r}[{i}]"]) for r in range(args.regs)]
        print(f"  final register files: impl {impl} vs spec {spec}")


if __name__ == "__main__":
    main()
