#!/usr/bin/env python3
"""The paper's network example: counters tracking outstanding requests.

Shows three things:

1. a concrete simulation of the protocol (issue / serve / receive),
2. verification with every method, including the FD baseline that
   stores the counters as *functions* of the network contents,
3. what the per-processor property conjuncts look like.

Run:  python examples/network_counters.py [--procs 3]
"""

import argparse

from repro.bdd import pick_one
from repro.core import verify
from repro.models import message_network
from repro.models.network import OP_ISSUE, OP_RECEIVE, OP_SERVE


def simulate(problem) -> None:
    machine = problem.machine
    id_width = problem.parameters["id_width"]
    state = {name: pick_one(machine.init,
                            care_names=machine.current_names)[name]
             for name in machine.current_names}

    def inputs(op, proc=0, slot=0):
        values = {}
        for i in range(2):
            values[f"op[{i}]"] = bool((op >> i) & 1)
        for i in range(id_width):
            values[f"proc[{i}]"] = bool((proc >> i) & 1)
        slot_bits = len([n for n in machine.input_names
                         if n.startswith("slot[")])
        for i in range(slot_bits):
            values[f"slot[{i}]"] = bool((slot >> i) & 1)
        return values

    def show(label):
        counters = []
        p = 0
        while f"count{p}[0]" in state:
            bits = [i for i in range(8) if state.get(f"count{p}[{i}]")]
            counters.append(sum(1 << i for i in bits))
            p += 1
        slots = []
        s = 0
        while f"valid{s}[0]" in state:
            if state[f"valid{s}[0]"]:
                kind = "ack" if state[f"kind{s}[0]"] else "req"
                addr = sum(1 << i for i in range(id_width)
                           if state[f"addr{s}[{i}]"])
                slots.append(f"{kind}->P{addr}")
            else:
                slots.append("-")
            s += 1
        print(f"  {label:<24} counters={counters} network={slots}")

    show("reset")
    for label, step_inputs in [
            ("P0 issues into slot 0", inputs(OP_ISSUE, proc=0, slot=0)),
            ("P1 issues into slot 1", inputs(OP_ISSUE, proc=1, slot=1)),
            ("server serves slot 1", inputs(OP_SERVE, slot=1)),
            ("P1 receives its ack", inputs(OP_RECEIVE, slot=1)),
            ("server serves slot 0", inputs(OP_SERVE, slot=0)),
            ("P0 receives its ack", inputs(OP_RECEIVE, slot=0))]:
        assert problem.machine.input_allowed(state, step_inputs), label
        state = machine.step(state, step_inputs)
        show(label)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--procs", type=int, default=3,
                        help="number of processors (paper: 4 and 7)")
    args = parser.parse_args()

    problem = message_network(num_procs=args.procs)
    print(f"== concrete protocol run ({args.procs} processors) ==")
    simulate(problem)

    print("\n== the property, as implicit conjuncts ==")
    for index, conjunct in enumerate(problem.good_conjuncts):
        print(f"  counter{index} == #outstanding(P{index}): "
              f"{conjunct.size()} BDD nodes")

    print("\n== verification ==")
    for method in ("fwd", "bkwd", "fd", "ici", "xici"):
        result = verify(problem, method)
        print(f"  {result.method:>5}: {result.outcome}, "
              f"{result.iterations} iterations, largest iterate "
              f"{result.max_iterate_profile} nodes")


if __name__ == "__main__":
    main()
