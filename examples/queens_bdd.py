#!/usr/bin/env python3
"""N-queens with raw BDDs — a pure :mod:`repro.bdd` workout.

No state machines here; this is the classic BDD stress test: build the
constraint function one clause at a time, count solutions exactly with
:func:`repro.bdd.sat_count`, and extract one placement with
:func:`repro.bdd.pick_one`.  (8 queens has 92 solutions — a handy
self-check for any BDD package, and this package's microbenchmarks
build the same function.)

Run:  python examples/queens_bdd.py [--n 6]
"""

import argparse

from repro.bdd import BDD, Function, pick_one, sat_count


def queens_constraint(manager: BDD, n: int) -> Function:
    """One variable per square; True iff the board is a valid placement."""
    square = [[manager.new_var(f"q{r}_{c}") for c in range(n)]
              for r in range(n)]
    constraint = manager.true
    for r in range(n):
        # At least one queen per row...
        constraint = constraint & manager.disj(square[r])
        for c in range(n):
            attacks = []
            attacks.extend(square[r][k] for k in range(n) if k != c)
            attacks.extend(square[k][c] for k in range(n) if k != r)
            for k in range(1, n):
                for dr, dc in ((k, k), (k, -k), (-k, k), (-k, -k)):
                    rr, cc = r + dr, c + dc
                    if 0 <= rr < n and 0 <= cc < n:
                        attacks.append(square[rr][cc])
            # ...and a queen on (r, c) excludes every attacked square.
            no_attack = ~manager.disj(attacks)
            constraint = constraint & square[r][c].implies(no_attack)
    return constraint


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=6)
    args = parser.parse_args()
    manager = BDD()
    constraint = queens_constraint(manager, args.n)
    print(f"{args.n}-queens BDD: {constraint.size()} nodes "
          f"({manager.num_nodes_allocated} allocated)")
    solutions = sat_count(constraint)
    print(f"solutions: {solutions}")
    placement = pick_one(constraint)
    if placement is None:
        print("no placement exists")
        return
    print("one placement:")
    for r in range(args.n):
        row = "".join(
            " Q" if placement.get(f"q{r}_{c}", False) else " ."
            for c in range(args.n))
        print("  " + row)


if __name__ == "__main__":
    main()
