#!/usr/bin/env python3
"""Quickstart: model a tiny design, verify it five ways, break it.

This walks the whole public API in one file:

1. build a symbolic machine with :class:`repro.fsm.Builder`,
2. state a safety property as implicit conjuncts,
3. run every verification method from the paper,
4. inject a bug and replay the counterexample trace.

Run:  python examples/quickstart.py
"""

from repro.bdd import BDD
from repro.expr import BitVec
from repro.fsm import Builder
from repro.core import Options, Problem, verify


def build_problem(buggy: bool = False) -> Problem:
    """A bounded up/down counter: it must never exceed 12."""
    builder = Builder("updown")
    up = builder.input_bit("up")
    down = builder.input_bit("down")
    count = builder.registers("cnt", 4, init=0)
    shadow = builder.registers("shadow", 4, init=0)

    at_max = count.eq_const(12 if not buggy else 13)
    at_min = count.eq_const(0)
    increment = up & ~down & ~at_max
    decrement = down & ~up & ~at_min
    nxt = BitVec.select(
        [(increment, count.inc()), (decrement, count.dec())], count)
    builder.next(count, nxt)
    builder.next(shadow, nxt)  # a redundant mirror register

    good = [count.ule_const(12), count.eq(shadow)]
    return Problem(
        name="updown", machine=builder.build(), good_conjuncts=good,
        fd_dependent_bits=[f"shadow[{i}]" for i in range(4)])


def main() -> None:
    print("== verifying the correct design ==")
    for method in ("fwd", "bkwd", "fd", "ici", "xici"):
        result = verify(build_problem(), method)
        print(f"  {result.method:>5}: {result.outcome}, "
              f"{result.iterations} iterations, largest iterate "
              f"{result.max_iterate_profile} nodes")

    print("\n== verifying the buggy design (bound off by one) ==")
    problem = build_problem(buggy=True)
    result = verify(problem, "xici")
    print(f"  {result.method}: {result.outcome} "
          f"after {result.iterations} iterations")
    trace = result.trace
    print(f"  counterexample with {len(trace)} states "
          f"(replay check: {trace.replay_check(problem.machine)}):")
    for step in trace.steps:
        value = sum(1 << i for i in range(4) if step.state[f"cnt[{i}]"])
        moves = ""
        if step.inputs is not None:
            moves = ("  up" if step.inputs["up[0]"] else "") + \
                    ("  down" if step.inputs["down[0]"] else "")
        print(f"    cnt={value:>2}{moves}")


if __name__ == "__main__":
    main()
