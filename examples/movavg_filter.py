#!/usr/bin/env python3
"""The paper's moving-average filter (Figure 2): XICI derives the
assisting invariants automatically.

Three modes:

* default — verify unassisted (Table 2) and assisted (Table 1) and
  show that the automatically derived conjunct profile matches the
  human-written per-level lemmas;
* ``--diagram`` — print the Figure 2 block diagram and the stage
  inventory of the generated model;
* ``--simulate`` — feed a concrete sample stream through both the
  pipelined adder tree and the specification.

Run:  python examples/movavg_filter.py [--depth 4] [--width 8]
"""

import argparse

from repro.core import Options, verify
from repro.models import moving_average
from repro.models.movavg import DIAGRAM


def show_diagram(problem) -> None:
    print(DIAGRAM)
    depth = problem.parameters["depth"]
    width = problem.parameters["width"]
    levels = depth.bit_length() - 1
    machine = problem.machine
    print(f"generated model for depth {depth}, {width}-bit samples:")
    print(f"  sample window : {depth} x {width}-bit shift registers")
    for level in range(1, levels + 1):
        count = depth >> level
        print(f"  tree level {level}  : {count} x {width + level}-bit "
              f"adder registers + 1 x {width + levels}-bit delay entry")
    print(f"  state bits    : {machine.num_state_bits}")
    print(f"  output        : top {width} bits of the root sum "
          f"({levels}-bit discard)")


def simulate(problem) -> None:
    machine = problem.machine
    depth = problem.parameters["depth"]
    width = problem.parameters["width"]
    levels = depth.bit_length() - 1
    state = {name: False for name in machine.current_names}
    stream = [7, 3, 12, 5, 9, 14, 2, 8, 11, 4, 6, 13][:depth + levels + 4]
    print(f"  t  sample  impl-avg  spec-avg")
    history = []
    for t, sample in enumerate(stream):
        history.append(sample)
        impl = sum(1 << i for i in range(width + levels)
                   if state[f"t{levels}_0[{i}]"]) >> levels
        spec = sum(1 << i for i in range(width + levels)
                   if state[f"d{levels}[{i}]"]) >> levels
        marker = ""
        if t >= depth + levels:
            window = history[t - levels - depth:t - levels]
            marker = f"   (true avg {sum(window) // depth})"
        print(f"  {t:>2}  {sample:>6}  {impl:>8}  {spec:>8}{marker}")
        inputs = {f"x[{i}]": bool((sample >> i) & 1) for i in range(width)}
        state = machine.step(state, inputs)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--depth", type=int, default=4,
                        help="filter depth, power of two (paper: 4/8/16)")
    parser.add_argument("--width", type=int, default=8,
                        help="sample width (paper: 8)")
    parser.add_argument("--diagram", action="store_true")
    parser.add_argument("--simulate", action="store_true")
    args = parser.parse_args()

    problem = moving_average(depth=args.depth, width=args.width)
    if args.diagram:
        show_diagram(problem)
        return
    if args.simulate:
        simulate(problem)
        return

    print("== unassisted (Table 2): only the property, no lemmas ==")
    unassisted = verify(problem, "xici")
    print(f"  XICI: {unassisted.outcome}, {unassisted.iterations} "
          f"iterations, iterate {unassisted.max_iterate_profile}")

    print("\n== assisted (Table 1): user supplies per-level lemmas ==")
    assisted = verify(moving_average(depth=args.depth, width=args.width),
                      "xici", assisted=True)
    print(f"  XICI: {assisted.outcome}, {assisted.iterations} "
          f"iterations, iterate {assisted.max_iterate_profile}")

    print("\nThe unassisted run's converged conjuncts mirror the "
          "hand-written")
    print("per-level invariants — the policy derived them automatically "
          "(the")
    print("paper's Table 2 observation).")


if __name__ == "__main__":
    main()
