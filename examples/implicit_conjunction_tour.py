#!/usr/bin/env python3
"""A tour of the implicit-conjunction machinery itself.

Everything here operates on plain BDDs — no state machines — walking
through the paper's core ideas one by one:

1. a conjunction whose monolithic BDD explodes while its factors stay
   tiny (why implicit conjunctions exist),
2. care-set simplification (Restrict) shrinking conjuncts against each
   other,
3. the Figure 1 greedy evaluator deciding what to merge,
4. the exact equality test on two differently-represented lists,
5. automatic conjunctive decomposition recovering the factors from the
   monolithic product.

Run:  python examples/implicit_conjunction_tour.py [--words 6]
"""

import argparse

from repro.bdd import BDD, interleaved, shared_size
from repro.expr import BitVec
from repro.iclist import ConjList, TautologyChecker, \
    decompose_conjunction, greedy_evaluate, lists_equal


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--words", type=int, default=6,
                        help="number of independent 8-bit constraints")
    args = parser.parse_args()
    width = 8

    manager = BDD()
    for name in interleaved([(f"w{k}", width) for k in range(args.words)]):
        manager.new_var(name)
    words = [BitVec([manager.var(f"w{k}[{i}]") for i in range(width)])
             for k in range(args.words)]

    print("1. the blowup: typed constraints over interleaved words")
    factors = [word.ule_const(128) for word in words]
    monolithic = manager.conj(factors)
    print(f"   each factor: {factors[0].size()} nodes; "
          f"implicit list: {shared_size(factors)} nodes; "
          f"monolithic conjunction: {monolithic.size()} nodes")

    print("\n2. care-set simplification (Restrict)")
    redundant = factors[0] & factors[1]      # implied by the others
    conjlist = ConjList(manager, factors + [redundant])
    before = conjlist.profile()
    conjlist.simplify(only_by_smaller=False)
    print(f"   before: {before}")
    print(f"   after : {conjlist.profile()}  "
          "(conjuncts implied by the combined one simplified away)")

    print("\n3. the Figure 1 greedy evaluator")
    # Two clause pairs that merge profitably, plus the big factors that
    # must not merge.
    a, b = manager.var("w0[0]"), manager.var("w1[0]")
    merge_us = [a | b, a | ~b]
    conjlist = ConjList(manager, merge_us + factors[2:])
    stats = greedy_evaluate(conjlist)
    print(f"   merges performed: {stats.merges} "
          f"(ratios {[round(r, 2) for r in stats.ratios]})")
    print(f"   final list: {conjlist.profile()}")

    print("\n4. the exact termination test")
    left = ConjList(manager, [a | b, a | ~b, factors[2]])
    right = ConjList(manager, [a & factors[2]])
    checker = TautologyChecker(manager)
    print(f"   lists_equal(left, right) = "
          f"{lists_equal(left, right, checker)}")
    print(f"   effort: {checker.stats.calls} tautology calls, "
          f"{checker.stats.shannon_expansions} Shannon expansions")

    print("\n5. automatic decomposition of the monolithic product")
    recovered = decompose_conjunction(monolithic)
    print(f"   {monolithic.size()}-node BDD -> "
          f"{len(recovered)} factors of sizes "
          f"{sorted(f.size() for f in recovered)}")
    rebuilt = manager.conj(recovered)
    print(f"   conjunction of factors equals original: "
          f"{rebuilt.equiv(monolithic)}")


if __name__ == "__main__":
    main()
